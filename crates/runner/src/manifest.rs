//! Plan manifests: what a journal directory *thinks* it is running.
//!
//! The journal caches job results by content key, so editing a plan under
//! an existing journal is safe — changed cells miss the cache and re-run.
//! It is also silent, and silence is how a "resumed" campaign quietly
//! becomes a different experiment. The runner therefore writes a
//! `campaign.jsonl` manifest beside the journal: one line per plan cell
//! with the cell's stable content hash (scenario + protocol, the same
//! inputs [`PlanJob::key`](vanet_core::PlanJob::key) is built from). On the
//! next run with the same journal directory, the previous manifest is
//! diffed against the current plan and any drift — edited, added, removed
//! or relabelled cells — is reported before the campaign starts.

use crate::export::{json_escape, Json, JsonParser};
use std::path::{Path, PathBuf};
use vanet_core::{CampaignPlan, PlanCell};
use vanet_sim::StableHasher;

/// Name of the plan manifest inside a journal directory.
pub const MANIFEST_FILE: &str = "campaign.jsonl";

/// One plan cell as persisted in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Cell position in the plan.
    pub cell: usize,
    /// The campaign name the manifest was written under.
    pub campaign: String,
    /// The cell label.
    pub label: String,
    /// Protocol name (human context for drift messages).
    pub protocol: String,
    /// Scenario name (human context for drift messages).
    pub scenario: String,
    /// Stable content hash of the cell's (scenario, protocol) binding.
    pub hash: u64,
}

/// The stable content hash of a cell — the same scenario/protocol inputs
/// job keys are derived from, so "hash unchanged" means "every cached key
/// of this cell is still reachable".
#[must_use]
pub fn cell_hash(cell: &PlanCell) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_str("cell/v1");
    hasher.write_u64(cell.scenario.content_hash());
    hasher.write_u64(cell.protocol.content_hash());
    hasher.finish()
}

/// Projects a plan into its manifest entries.
#[must_use]
pub fn manifest_entries(plan: &CampaignPlan) -> Vec<ManifestEntry> {
    plan.cells
        .iter()
        .enumerate()
        .map(|(cell, c)| ManifestEntry {
            cell,
            campaign: plan.name.clone(),
            label: c.label.clone(),
            protocol: c.protocol.name().to_owned(),
            scenario: c.scenario.name.clone(),
            hash: cell_hash(c),
        })
        .collect()
}

/// Renders one manifest line (no trailing newline).
#[must_use]
pub fn render_entry(entry: &ManifestEntry) -> String {
    format!(
        "{{\"cell\":{},\"campaign\":\"{}\",\"label\":\"{}\",\"protocol\":\"{}\",\
         \"scenario\":\"{}\",\"hash\":\"{:016x}\"}}",
        entry.cell,
        json_escape(&entry.campaign),
        json_escape(&entry.label),
        json_escape(&entry.protocol),
        json_escape(&entry.scenario),
        entry.hash,
    )
}

/// Parses one manifest line.
pub fn parse_entry(line: &str) -> Result<ManifestEntry, String> {
    let value = JsonParser::new(line).value()?;
    let text = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    let cell = value
        .get("cell")
        .and_then(Json::as_f64)
        .ok_or("missing cell index")? as usize;
    let hash_hex = text("hash")?;
    let hash = u64::from_str_radix(&hash_hex, 16).map_err(|_| format!("bad hash {hash_hex:?}"))?;
    Ok(ManifestEntry {
        cell,
        campaign: text("campaign")?,
        label: text("label")?,
        protocol: text("protocol")?,
        scenario: text("scenario")?,
        hash,
    })
}

/// The manifest file's path inside a journal directory.
#[must_use]
pub fn manifest_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(MANIFEST_FILE)
}

/// Loads the manifest previously written in `dir`, if any. Unparseable
/// lines are skipped (an interrupted write only costs that line's drift
/// context, never the run).
pub fn load(dir: impl AsRef<Path>) -> std::io::Result<Option<Vec<ManifestEntry>>> {
    let path = manifest_path(dir);
    let Ok(existing) = std::fs::read_to_string(&path) else {
        return Ok(None);
    };
    let mut entries = Vec::new();
    for line in existing.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(entry) = parse_entry(line) {
            entries.push(entry);
        }
    }
    Ok(Some(entries))
}

/// Rewrites the manifest in `dir` to describe `plan`.
pub fn write(dir: impl AsRef<Path>, plan: &CampaignPlan) -> std::io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut out = String::new();
    for entry in manifest_entries(plan) {
        out.push_str(&render_entry(&entry));
        out.push('\n');
    }
    std::fs::write(manifest_path(dir), out)
}

/// Describes how the current plan drifted from a previously recorded
/// manifest: one human-readable line per difference, empty when the plan
/// is unchanged. Cells are matched positionally — the same way journal
/// results are folded back into cells.
#[must_use]
pub fn diff(previous: &[ManifestEntry], current: &[ManifestEntry]) -> Vec<String> {
    let mut lines = Vec::new();
    for (old, new) in previous.iter().zip(current.iter()) {
        if old.hash != new.hash {
            lines.push(format!(
                "cell {} ({:?}, {} on {}) changed content since the journal was written \
                 (was {:?}, {} on {}); its cached results no longer apply and it will re-run",
                new.cell,
                new.label,
                new.protocol,
                new.scenario,
                old.label,
                old.protocol,
                old.scenario,
            ));
        } else if old.label != new.label {
            lines.push(format!(
                "cell {} was relabelled {:?} -> {:?} (content unchanged; cache still applies)",
                new.cell, old.label, new.label,
            ));
        }
    }
    if current.len() > previous.len() {
        lines.push(format!(
            "plan grew from {} to {} cells since the journal was written",
            previous.len(),
            current.len(),
        ));
    }
    if current.len() < previous.len() {
        lines.push(format!(
            "plan shrank from {} to {} cells since the journal was written",
            previous.len(),
            current.len(),
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use vanet_core::{ProtocolKind, ReplicationPolicy, Scenario};

    fn plan() -> CampaignPlan {
        CampaignPlan::new("manifest-test")
            .cell_with(
                "hw-aodv",
                Scenario::highway(10).with_seed(3),
                ProtocolKind::Aodv,
                ReplicationPolicy::Fixed(2),
            )
            .cell_with(
                "hw-greedy",
                Scenario::highway(10).with_seed(3),
                ProtocolKind::Greedy,
                ReplicationPolicy::Fixed(2),
            )
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vanet-manifest-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn entries_round_trip_exactly() {
        for entry in manifest_entries(&plan()) {
            let parsed = parse_entry(&render_entry(&entry)).expect("rendered entry parses");
            assert_eq!(parsed, entry);
        }
    }

    #[test]
    fn hash_tracks_cell_content_not_labels_or_policy() {
        let base = plan();
        let mut relabelled = plan();
        relabelled.cells[0].label = "renamed".to_owned();
        relabelled.cells[0].replication = ReplicationPolicy::Fixed(9);
        assert_eq!(cell_hash(&base.cells[0]), cell_hash(&relabelled.cells[0]));
        let mut edited = plan();
        edited.cells[0].scenario = edited.cells[0].scenario.clone().with_seed(4);
        assert_ne!(cell_hash(&base.cells[0]), cell_hash(&edited.cells[0]));
        assert_ne!(cell_hash(&base.cells[0]), cell_hash(&base.cells[1]));
    }

    #[test]
    fn diff_reports_edits_relabels_and_shape_changes() {
        let before = manifest_entries(&plan());
        assert!(diff(&before, &manifest_entries(&plan())).is_empty());

        let mut edited = plan();
        edited.cells[1].scenario = edited.cells[1].scenario.clone().with_flows(9);
        let lines = diff(&before, &manifest_entries(&edited));
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("cell 1") && lines[0].contains("changed content"));

        let mut relabelled = plan();
        relabelled.cells[0].label = "renamed".to_owned();
        let lines = diff(&before, &manifest_entries(&relabelled));
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("relabelled"));

        let grown = plan().cell_with(
            "extra",
            Scenario::highway(5).with_seed(1),
            ProtocolKind::Flooding,
            ReplicationPolicy::Fixed(1),
        );
        let lines = diff(&before, &manifest_entries(&grown));
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("grew"));
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        assert_eq!(load(&dir).unwrap(), None);
        write(&dir, &plan()).unwrap();
        let loaded = load(&dir).unwrap().expect("manifest exists");
        assert_eq!(loaded, manifest_entries(&plan()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
