//! Named, ready-to-run campaigns for the paper's evaluation matrix.
//!
//! The catalog gives the `vanet-campaign` CLI (and tests) one-word access to
//! the standard sweeps. Every campaign comes in a quick variant (CI-sized)
//! and a full variant (paper-scale densities and durations).

use crate::campaign::CampaignSpec;
use crate::scenario_spec;
use vanet_core::{ProtocolKind, Scenario, TrafficRegime};
use vanet_sim::SimDuration;

/// Names of the campaigns [`campaign_by_name`] knows, with one-line blurbs.
pub const CATALOG: [(&str, &str); 5] = [
    (
        "quick",
        "2 scenarios x 3 protocols x 3 seeds smoke campaign",
    ),
    (
        "table1",
        "Table I: one representative protocol per category, three traffic regimes",
    ),
    ("fig2", "Fig. 2: AODV discovery cost vs network size"),
    ("fig6", "Fig. 6: geographic/zone routing on the urban grid"),
    (
        "density",
        "highway density sweep over all five representatives",
    ),
];

fn quick_duration(full: bool) -> SimDuration {
    if full {
        SimDuration::from_secs(90.0)
    } else {
        SimDuration::from_secs(20.0)
    }
}

fn regime_scenario(regime: TrafficRegime, full: bool) -> Scenario {
    if full {
        Scenario::highway_regime(regime)
    } else {
        // Scaled-down populations that keep the sparse < normal < congested
        // ordering while staying CI-fast (mirrors vanet-bench's quick effort).
        let vehicles = match regime {
            TrafficRegime::Sparse => 10,
            TrafficRegime::Normal => 40,
            TrafficRegime::Congested => 90,
        };
        Scenario::highway(vehicles).with_name(format!("quick-{regime}"))
    }
}

/// Builds a named catalog campaign, or `None` for an unknown name.
#[must_use]
pub fn campaign_by_name(name: &str, full: bool) -> Option<CampaignSpec> {
    let duration = quick_duration(full);
    let seeds = if full { 5 } else { 3 };
    let spec = match name {
        "quick" => {
            let vehicles = if full { 60 } else { 30 };
            CampaignSpec::new("quick")
                .scenario(
                    format!("highway-{vehicles}"),
                    Scenario::highway(vehicles)
                        .with_flows(3)
                        .with_duration(duration),
                )
                .scenario(
                    format!("urban-{vehicles}"),
                    Scenario::urban(vehicles)
                        .with_flows(3)
                        .with_duration(duration),
                )
                .protocols([
                    ProtocolKind::Aodv,
                    ProtocolKind::Greedy,
                    ProtocolKind::Flooding,
                ])
                .replications(seeds)
        }
        "table1" => {
            let mut spec = CampaignSpec::new("table1")
                .protocols(ProtocolKind::REPRESENTATIVES)
                .replications(seeds);
            for regime in TrafficRegime::ALL {
                spec = spec.scenario(
                    regime.to_string(),
                    regime_scenario(regime, full)
                        .with_flows(4)
                        .with_duration(duration),
                );
            }
            spec
        }
        "fig2" => {
            let sizes: &[usize] = if full {
                &[20, 40, 80, 120, 160]
            } else {
                &[20, 40]
            };
            let mut spec = CampaignSpec::new("fig2")
                .protocols([ProtocolKind::Aodv])
                .replications(seeds);
            for &n in sizes {
                spec = spec.scenario(
                    format!("fig2-{n}"),
                    Scenario::highway(n)
                        .with_name(format!("fig2-{n}"))
                        .with_flows(2)
                        .with_duration(duration),
                );
            }
            spec
        }
        "fig6" => CampaignSpec::new("fig6")
            .scenario(
                "fig6-urban",
                Scenario::urban(if full { 80 } else { 40 })
                    .with_name("fig6-urban")
                    .with_flows(4)
                    .with_duration(duration),
            )
            .protocols([
                ProtocolKind::Flooding,
                ProtocolKind::Zone,
                ProtocolKind::Greedy,
            ])
            .replications(seeds),
        "density" => {
            let mut spec = CampaignSpec::new("density")
                .protocols(ProtocolKind::REPRESENTATIVES)
                .replications(seeds);
            for vehicles in [10usize, 40, 90] {
                spec = spec.scenario(
                    format!("highway-{vehicles}"),
                    Scenario::highway(vehicles)
                        .with_flows(3)
                        .with_duration(duration),
                );
            }
            spec
        }
        _ => return None,
    };
    Some(spec)
}

/// Parses a scenario specifier used by the CLI's `--scenarios` flag:
/// `highway-<N>`, `urban-<N>`, `megacity-<N>`, or a traffic-regime name
/// (`sparse`/`normal`/`congested`), with `:key=value` options.
///
/// # Errors
///
/// Returns a [`crate::ScenarioParseError`] naming the bad field.
pub fn parse_scenario(spec: &str) -> Result<Scenario, crate::ScenarioParseError> {
    scenario_spec::parse(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_builds() {
        for (name, _) in CATALOG {
            for full in [false, true] {
                let spec = campaign_by_name(name, full)
                    .unwrap_or_else(|| panic!("catalog entry {name} missing"));
                assert!(spec.job_count() > 0, "{name} expands to zero jobs");
            }
        }
        assert!(campaign_by_name("nope", false).is_none());
    }

    #[test]
    fn quick_campaign_matches_acceptance_shape() {
        let spec = campaign_by_name("quick", false).unwrap();
        assert!(spec.scenarios.len() >= 2);
        assert!(spec.protocols.len() >= 3);
        assert_eq!(spec.replications, 3);
    }
}
