//! The campaign execution engine.
//!
//! [`Runner`] expands a [`CampaignSpec`] into jobs, executes them on the
//! work-stealing pool from `vanet_sim::pool`, and reduces each cell's
//! replications into a [`Summary`]. Determinism contract: because every job
//! is seeded at expansion time and results are reduced in job order, the
//! produced [`CampaignResults`] are identical for any worker count — the
//! `campaign_is_deterministic_across_worker_counts` integration test pins
//! this down.

use crate::campaign::CampaignSpec;
use crate::summary::Summary;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vanet_core::{run_scenario, ProtocolKind, Report};
use vanet_sim::pool::{available_workers, parallel_map_with_progress};

/// One aggregated (scenario × protocol) cell of a finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The scenario label from the spec.
    pub label: String,
    /// The scenario's own name (e.g. "highway-40").
    pub scenario: String,
    /// The protocol evaluated.
    pub protocol: ProtocolKind,
    /// Per-metric statistics over the replications.
    pub summary: Summary,
}

impl CellSummary {
    /// Collapses the cell to a mean-only [`Report`] (legacy reduction).
    #[must_use]
    pub fn mean_report(&self) -> Report {
        self.summary
            .mean_report(self.protocol.name(), &self.scenario)
    }
}

/// The outcome of running a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResults {
    /// The campaign name.
    pub campaign: String,
    /// Number of workers the campaign ran on.
    pub workers: usize,
    /// Wall-clock execution time (not part of the determinism contract).
    pub elapsed: Duration,
    /// One aggregated cell per (scenario × protocol) pair, in spec order.
    pub cells: Vec<CellSummary>,
}

impl CampaignResults {
    /// Total replications across all cells.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.cells.iter().map(|c| c.summary.replications).sum()
    }
}

/// Executes campaigns on a pool of worker threads.
#[derive(Debug, Clone)]
pub struct Runner {
    workers: usize,
    progress: bool,
    shard: Option<(usize, usize)>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner sized to the available hardware parallelism, silent.
    #[must_use]
    pub fn new() -> Self {
        Runner {
            workers: available_workers(),
            progress: false,
            shard: None,
        }
    }

    /// Restricts the runner to shard `index` of `count`: only the cells with
    /// `cell % count == index` are executed. Sharding partitions the expanded
    /// job list deterministically, so `count` machines each running one shard
    /// cover exactly the full campaign with disjoint cells.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count` or `count == 0`.
    #[must_use]
    pub fn with_shard(mut self, index: usize, count: usize) -> Self {
        assert!(
            count > 0 && index < count,
            "shard index {index} out of range for {count} shards"
        );
        self.shard = Some((index, count));
        self
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables per-job progress lines on stderr.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job of `spec` and aggregates per-cell summaries.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no scenarios or no protocols.
    #[must_use]
    pub fn run(&self, spec: &CampaignSpec) -> CampaignResults {
        assert!(
            !spec.scenarios.is_empty() && !spec.protocols.is_empty(),
            "campaign '{}' has an empty scenario or protocol set",
            spec.name
        );
        let jobs: Vec<_> = spec
            .jobs()
            .into_iter()
            .filter(|job| match self.shard {
                None => true,
                Some((index, count)) => job.cell % count == index,
            })
            .collect();
        let total = jobs.len();
        if self.progress {
            let shard_note = match self.shard {
                None => String::new(),
                Some((index, count)) => format!(" (shard {index}/{count})"),
            };
            eprintln!(
                "[vanet-runner] campaign '{}': {} cells x {} replications = {} jobs on {} workers{}",
                spec.name,
                spec.cell_count(),
                spec.replications.max(1),
                total,
                self.workers,
                shard_note
            );
        }
        let started = Instant::now();
        // stderr is locked per line so concurrent workers never interleave
        // within a progress line.
        let stderr = Mutex::new(std::io::stderr());
        let reports = parallel_map_with_progress(
            total,
            self.workers,
            |i| {
                let job = &jobs[i];
                run_scenario(job.scenario.clone(), job.protocol)
            },
            |i, done, n| {
                if self.progress {
                    let job = &jobs[i];
                    let (label, _, _) = spec.cell(job.cell);
                    let mut err = stderr.lock().expect("stderr lock poisoned");
                    let _ = writeln!(
                        err,
                        "[vanet-runner] {done}/{n} {} on {} (seed {})",
                        job.protocol, label, job.scenario.seed
                    );
                }
            },
        );
        let elapsed = started.elapsed();

        // Jobs are cell-major, so (even after shard filtering) each cell's
        // replications are a contiguous run of the report list.
        let mut cells = Vec::new();
        let mut start = 0;
        while start < jobs.len() {
            let cell = jobs[start].cell;
            let mut end = start + 1;
            while end < jobs.len() && jobs[end].cell == cell {
                end += 1;
            }
            let (label, scenario, protocol) = spec.cell(cell);
            cells.push(CellSummary {
                label: label.to_owned(),
                scenario: scenario.name.clone(),
                protocol,
                summary: Summary::from_reports(&reports[start..end])
                    .expect("every cell has >= 1 replication"),
            });
            start = end;
        }
        if self.progress {
            eprintln!(
                "[vanet-runner] campaign '{}' finished: {} jobs in {:.2}s",
                spec.name,
                total,
                elapsed.as_secs_f64()
            );
        }
        CampaignResults {
            campaign: spec.name.clone(),
            workers: self.workers,
            elapsed,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_core::Scenario;
    use vanet_sim::SimDuration;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("tiny")
            .scenario(
                "hw",
                Scenario::highway(10)
                    .with_flows(2)
                    .with_duration(SimDuration::from_secs(10.0)),
            )
            .protocols([ProtocolKind::Flooding])
            .replications(2)
    }

    #[test]
    fn runs_and_aggregates() {
        let results = Runner::new().with_workers(2).run(&tiny_spec());
        assert_eq!(results.cells.len(), 1);
        let cell = &results.cells[0];
        assert_eq!(cell.label, "hw");
        assert_eq!(cell.protocol, ProtocolKind::Flooding);
        assert_eq!(cell.summary.replications, 2);
        assert!(cell.summary.data_sent.mean > 0.0);
        assert_eq!(results.total_runs(), 2);
    }

    #[test]
    #[should_panic(expected = "empty scenario or protocol set")]
    fn empty_spec_panics() {
        let _ = Runner::new().run(&CampaignSpec::new("empty"));
    }

    fn shard_spec() -> CampaignSpec {
        CampaignSpec::new("sharded")
            .scenario(
                "a",
                Scenario::highway(8)
                    .with_flows(1)
                    .with_duration(SimDuration::from_secs(5.0)),
            )
            .scenario(
                "b",
                Scenario::highway(12)
                    .with_flows(1)
                    .with_duration(SimDuration::from_secs(5.0)),
            )
            .protocols([ProtocolKind::Flooding, ProtocolKind::Greedy])
            .replications(2)
    }

    #[test]
    fn shards_are_disjoint_and_cover_the_full_campaign() {
        let spec = shard_spec();
        let full = Runner::new().with_workers(2).run(&spec);
        let count = 3;
        let mut union: Vec<CellSummary> = Vec::new();
        for index in 0..count {
            let shard = Runner::new()
                .with_workers(2)
                .with_shard(index, count)
                .run(&spec);
            for cell in shard.cells {
                assert!(
                    !union
                        .iter()
                        .any(|c| c.label == cell.label && c.protocol == cell.protocol),
                    "cell {}/{} appeared in two shards",
                    cell.label,
                    cell.protocol
                );
                union.push(cell);
            }
        }
        assert_eq!(union.len(), full.cells.len(), "shards must cover all cells");
        // Shard execution must not change any cell's result: compare against
        // the unsharded run cell by cell.
        for cell in &full.cells {
            let from_shard = union
                .iter()
                .find(|c| c.label == cell.label && c.protocol == cell.protocol)
                .expect("cell covered by some shard");
            assert_eq!(from_shard.summary, cell.summary, "sharding altered a cell");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        let _ = Runner::new().with_shard(3, 3);
    }
}
