//! The campaign execution engine.
//!
//! [`Runner`] executes a [`CampaignPlan`] on the work-stealing pool from
//! `vanet_sim::pool`, reducing each cell's replications into a [`Summary`].
//! Execution proceeds in rounds: the plan's initial jobs first, then — for
//! cells with a `ConfidenceWidth` replication policy — an adaptive batch of
//! extra seeds per still-too-wide cell per round (sized from the observed
//! variance, see [`next_adaptive_round`]), until every cell's 95% CI is
//! narrow enough or its cap is reached.
//!
//! Determinism contract: every job is seeded at expansion time
//! (`CampaignPlan::job`), results are reduced in job order, and adaptive
//! stopping decisions depend only on the (deterministic) reports, so the
//! produced [`CampaignResults`] are identical for any worker count, with or
//! without a journal, resumed or cold — the integration tests pin this down.
//!
//! With [`Runner::with_journal`], every completed job streams into a
//! [`Journal`] keyed by its content hash; jobs already present are replayed
//! from the cache instead of executed, which is both crash-resume and
//! cell-level caching (see `crate::journal`).

use crate::campaign::CampaignSpec;
use crate::journal::{Journal, JournalEntry, QuarantineEntry};
use crate::manifest;
use crate::summary::{t_critical_95, Summary};
use crate::telemetry::{TelemetryEntry, TelemetryLog};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vanet_core::{
    run_scenario, CampaignPlan, PlanJob, ProtocolKind, ReplicationPolicy, Report, Simulation,
    WindowedTap,
};
use vanet_sim::pool::{available_workers, parallel_map_with_progress};
use vanet_sim::SimDuration;

/// Configuration of the streaming telemetry tap (see
/// [`Runner::with_telemetry`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySettings {
    /// Window width in simulated seconds.
    pub window_s: f64,
    /// Spatial buckets per axis for the per-region aggregates.
    pub regions_per_axis: usize,
}

impl Default for TelemetrySettings {
    fn default() -> Self {
        TelemetrySettings {
            window_s: 1.0,
            regions_per_axis: 8,
        }
    }
}

/// One aggregated cell of a finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell label from the plan.
    pub label: String,
    /// The scenario's own name (e.g. "highway-40").
    pub scenario: String,
    /// The protocol evaluated.
    pub protocol: ProtocolKind,
    /// Per-metric statistics over the replications.
    pub summary: Summary,
}

impl CellSummary {
    /// Collapses the cell to a mean-only [`Report`] (legacy reduction).
    #[must_use]
    pub fn mean_report(&self) -> Report {
        self.summary
            .mean_report(self.protocol.name(), &self.scenario)
    }
}

/// A job the campaign gave up on: every allowed attempt panicked (or a
/// previous run's quarantine was replayed from the journal).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedJob {
    /// The cell label from the plan.
    pub label: String,
    /// The protocol the job would have evaluated.
    pub protocol: ProtocolKind,
    /// The job's fully derived seed.
    pub seed: u64,
    /// Attempts made before quarantine (`--max-retries` + 1).
    pub attempts: u32,
    /// First line of the panic payload from the final attempt.
    pub error: String,
}

/// The outcome of running a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResults {
    /// The campaign name.
    pub campaign: String,
    /// Number of workers the campaign ran on.
    pub workers: usize,
    /// Wall-clock execution time (not part of the determinism contract).
    pub elapsed: Duration,
    /// Jobs actually executed this run (not part of the determinism
    /// contract: resuming from a journal lowers it).
    pub executed_jobs: usize,
    /// Jobs replayed from the journal cache instead of executed.
    pub cached_jobs: usize,
    /// One aggregated cell per plan cell, in plan order. Cells whose every
    /// job was quarantined have no summary and are omitted here — they
    /// appear in [`CampaignResults::quarantined`] instead.
    pub cells: Vec<CellSummary>,
    /// Jobs quarantined this run (freshly poisoned or replayed from the
    /// journal), in deterministic plan order.
    pub quarantined: Vec<QuarantinedJob>,
}

impl CampaignResults {
    /// Total replications across all cells.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.cells.iter().map(|c| c.summary.replications).sum()
    }
}

/// Executes campaigns on a pool of worker threads.
#[derive(Debug, Clone)]
pub struct Runner {
    workers: usize,
    progress: bool,
    shard: Option<(usize, usize)>,
    journal_dir: Option<PathBuf>,
    telemetry: Option<TelemetrySettings>,
    max_retries: u32,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner sized to the available hardware parallelism, silent.
    #[must_use]
    pub fn new() -> Self {
        Runner {
            workers: available_workers(),
            progress: false,
            shard: None,
            journal_dir: None,
            telemetry: None,
            max_retries: 0,
        }
    }

    /// Allows each job up to `retries` extra attempts after a panic before it
    /// is quarantined. The exponential backoff schedule between attempts
    /// (1s, 2s, 4s, …) is *recorded* in the quarantine entry rather than
    /// slept, so retried runs stay deterministic and fast. A quarantine
    /// replayed from the journal is honoured only while its recorded attempt
    /// count meets the current allowance — raising `--max-retries` on a
    /// resume re-runs previously quarantined jobs, healing them if they now
    /// succeed.
    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Restricts the runner to shard `index` of `count`: only the cells with
    /// `cell % count == index` are executed. Sharding partitions the plan's
    /// cells deterministically, so `count` machines each running one shard
    /// cover exactly the full campaign with disjoint cells. Composes with
    /// [`Runner::with_journal`]: a resumed shard skips its own completed
    /// jobs.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `index >= count` — an out-of-range shard
    /// would otherwise silently run zero cells and export an empty campaign.
    #[must_use]
    pub fn with_shard(mut self, index: usize, count: usize) -> Self {
        assert!(count > 0, "shard count must be at least 1, got 0");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards (need index < count)"
        );
        self.shard = Some((index, count));
        self
    }

    /// Enables the resumable journal in `dir` (created if missing): completed
    /// jobs stream into `dir/journal.jsonl` and jobs already recorded there
    /// are replayed from the cache instead of executed.
    #[must_use]
    pub fn with_journal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Attaches the streaming telemetry tap: every executed job runs with a
    /// [`WindowedTap`] and flushes its windows into `telemetry.jsonl` next
    /// to the campaign journal. Requires [`Runner::with_journal`] (the tap
    /// persists beside the journal; `run_plan` panics otherwise). Reports
    /// are byte-identical with and without the tap — it only observes.
    ///
    /// Resume composes: a job is only treated as cached when both its
    /// journal line *and* its telemetry line survived, so a truncated
    /// `telemetry.jsonl` re-runs exactly the affected jobs.
    ///
    /// # Panics
    ///
    /// Panics if `settings.window_s` is not positive or
    /// `settings.regions_per_axis` is zero.
    #[must_use]
    pub fn with_telemetry(mut self, settings: TelemetrySettings) -> Self {
        assert!(
            settings.window_s > 0.0,
            "telemetry window must be positive, got {}",
            settings.window_s
        );
        assert!(
            settings.regions_per_axis > 0,
            "telemetry needs at least one region per axis"
        );
        self.telemetry = Some(settings);
        self
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables per-job progress lines on stderr.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a legacy cross-product [`CampaignSpec`] by converting it to a
    /// [`CampaignPlan`] — results are byte-identical to the pre-plan engine.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no scenarios or no protocols.
    #[must_use]
    pub fn run(&self, spec: &CampaignSpec) -> CampaignResults {
        assert!(
            !spec.scenarios.is_empty() && !spec.protocols.is_empty(),
            "campaign '{}' has an empty scenario or protocol set",
            spec.name
        );
        self.run_plan(&spec.to_plan())
    }

    /// Runs every cell of `plan` and aggregates per-cell summaries.
    ///
    /// Worker panics never abort the campaign: each job runs behind
    /// `catch_unwind`, gets up to `--max-retries` extra attempts, and is then
    /// quarantined — recorded in the journal and reported in
    /// [`CampaignResults::quarantined`] while every healthy cell completes
    /// normally. Journal/telemetry IO errors (unopenable directory, disk
    /// full) degrade to a warning plus disabled persistence instead of
    /// aborting the run.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no cells or if a `ConfidenceWidth` policy
    /// names an unknown metric.
    #[must_use]
    pub fn run_plan(&self, plan: &CampaignPlan) -> CampaignResults {
        assert!(
            !plan.cells.is_empty(),
            "campaign '{}' has no cells",
            plan.name
        );
        let probe = Summary::default();
        for cell in &plan.cells {
            if let ReplicationPolicy::ConfidenceWidth { metric, .. } = &cell.replication {
                assert!(
                    probe.metric(metric).is_some(),
                    "cell '{}' watches unknown metric {metric:?} (see vanet_runner::METRIC_NAMES)",
                    cell.label
                );
            }
        }
        // IO problems anywhere in the persistence layer degrade instead of
        // aborting: an unopenable journal disables resume, an unopenable
        // telemetry log disables the tap (reports are byte-identical either
        // way), and write failures mid-run are warned about once and then
        // muted — the campaign's in-memory results always complete.
        let journal = self
            .journal_dir
            .as_ref()
            .and_then(|dir| match Journal::open(dir) {
                Ok(journal) => Some(journal),
                Err(error) => {
                    // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                    eprintln!(
                        "[vanet-runner] warning: cannot open journal in {dir:?}: {error}; \
                     continuing without resume or caching"
                    );
                    None
                }
            });
        if let (Some(dir), Some(journal)) = (self.journal_dir.as_ref(), journal.as_ref()) {
            // Plan-drift check: if this journal directory already holds
            // results and a manifest, report every cell whose content
            // changed since — a "resume" of an edited plan is a different
            // experiment, and that should never be silent.
            if !journal.is_empty() || journal.quarantined_len() > 0 {
                match manifest::load(dir) {
                    Ok(Some(previous)) => {
                        for warning in manifest::diff(&previous, &manifest::manifest_entries(plan))
                        {
                            // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                            eprintln!("[vanet-runner] warning: {warning}");
                        }
                    }
                    Ok(None) => {}
                    // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                    Err(error) => eprintln!(
                        "[vanet-runner] warning: cannot read manifest in {dir:?}: {error}; \
                         skipping plan-drift check"
                    ),
                }
            }
            if let Err(error) = manifest::write(dir, plan) {
                // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                eprintln!("[vanet-runner] warning: cannot write manifest in {dir:?}: {error}");
            }
        }
        let telemetry_log = self.telemetry.and_then(|_| {
            let dir = self.journal_dir.as_ref().expect(
                "telemetry requires a journal directory (Runner::with_journal) to persist into",
            );
            match TelemetryLog::open(dir) {
                Ok(log) => Some(log),
                Err(error) => {
                    // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                    eprintln!(
                        "[vanet-runner] warning: cannot open telemetry log in {dir:?}: {error}; \
                         continuing without the tap"
                    );
                    None
                }
            }
        });
        // The tap only runs when its log opened; reports are identical
        // either way, so this degradation never changes results.
        let telemetry_settings = if telemetry_log.is_some() {
            self.telemetry
        } else {
            None
        };
        let journal_writable = AtomicBool::new(true);
        let telemetry_writable = AtomicBool::new(true);
        let allowed_attempts = self.max_retries.saturating_add(1);

        let in_shard = |cell: usize| match self.shard {
            None => true,
            Some((index, count)) => cell % count == index,
        };
        // Per-kept-cell report accumulators, in plan-cell order.
        let kept: Vec<usize> = (0..plan.cells.len()).filter(|&c| in_shard(c)).collect();
        let mut reports: Vec<Vec<Report>> = vec![Vec::new(); plan.cells.len()];

        if self.progress {
            let shard_note = match self.shard {
                None => String::new(),
                Some((index, count)) => format!(" (shard {index}/{count})"),
            };
            let journal_note = match &journal {
                None => String::new(),
                Some(j) => format!(", journal cache: {} jobs", j.len()),
            };
            // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
            eprintln!(
                "[vanet-runner] campaign '{}': {} cells, {} initial jobs on {} workers{}{}",
                plan.name,
                kept.len(),
                plan.initial_job_count(),
                self.workers,
                shard_note,
                journal_note
            );
        }
        let started = Instant::now();
        // stderr is locked per line so concurrent workers never interleave
        // within a progress line.
        let stderr = Mutex::new(std::io::stderr());
        let mut executed = 0;
        let mut cached = 0;
        let mut quarantined: Vec<QuarantinedJob> = Vec::new();
        // Cells with a quarantined job are frozen out of adaptive rounds:
        // their replicate count can no longer grow deterministically, and
        // re-deriving the missing seed would just re-run the same panic.
        let mut frozen = vec![false; plan.cells.len()];

        let mut round: Vec<PlanJob> = plan
            .initial_jobs()
            .into_iter()
            .filter(|job| in_shard(job.cell))
            .collect();
        while !round.is_empty() {
            // Resolve journal hits first; only the misses go to the pool.
            // With telemetry on, a hit additionally requires the job's
            // telemetry line — a truncated `telemetry.jsonl` re-runs the
            // affected job so the log heals deterministically. A journaled
            // quarantine is replayed (not re-run) while its recorded attempt
            // count meets the current allowance; raising --max-retries
            // re-runs it for a chance to heal.
            let mut resolved: Vec<Option<Report>> = vec![None; round.len()];
            let mut replayed_quarantine = vec![false; round.len()];
            if let Some(j) = &journal {
                for (i, job) in round.iter().enumerate() {
                    if let Some(report) = j.lookup(job.key()) {
                        match &telemetry_log {
                            Some(tlog) if !tlog.contains(job.key()) => {}
                            _ => resolved[i] = Some(report.clone()),
                        }
                    } else if let Some(q) = j.lookup_quarantine(job.key()) {
                        if q.attempts >= allowed_attempts {
                            replayed_quarantine[i] = true;
                            frozen[job.cell] = true;
                            quarantined.push(QuarantinedJob {
                                label: plan.cells[job.cell].label.clone(),
                                protocol: job.protocol,
                                seed: job.scenario.seed,
                                attempts: q.attempts,
                                error: q.error.clone(),
                            });
                        }
                    }
                }
            }
            cached += resolved.iter().filter(|r| r.is_some()).count();
            let to_run: Vec<usize> = (0..round.len())
                .filter(|&i| resolved[i].is_none() && !replayed_quarantine[i])
                .collect();
            executed += to_run.len();
            let fresh = parallel_map_with_progress(
                to_run.len(),
                self.workers,
                |i| -> Result<Report, (Vec<f64>, String)> {
                    let job = &round[to_run[i]];
                    let mut backoff_s = Vec::new();
                    let mut last_error = String::new();
                    for attempt in 0..allowed_attempts {
                        // The simulation itself runs behind catch_unwind so a
                        // poisoned job only loses its own cell, never the
                        // campaign; the (infallible-by-construction) journal
                        // and telemetry writes happen outside it.
                        let outcome = catch_unwind(AssertUnwindSafe(
                            || -> (Report, Option<TelemetryEntry>) {
                                match (telemetry_settings, &telemetry_log) {
                                    (Some(settings), Some(_)) => {
                                        let tap = WindowedTap::new(
                                            SimDuration::from_secs(settings.window_s),
                                            settings.regions_per_axis,
                                        );
                                        let mut sim = Simulation::with_telemetry(
                                            job.scenario.clone(),
                                            job.protocol,
                                            tap,
                                        );
                                        let report = sim.run();
                                        let tap = sim.into_telemetry();
                                        let entry = TelemetryEntry::from_tap(
                                            job.key(),
                                            &plan.name,
                                            &plan.cells[job.cell].label,
                                            job.scenario.seed,
                                            &tap,
                                        );
                                        (report, Some(entry))
                                    }
                                    _ => (run_scenario(job.scenario.clone(), job.protocol), None),
                                }
                            },
                        ));
                        match outcome {
                            Ok((report, entry)) => {
                                if let (Some(tlog), Some(entry)) = (&telemetry_log, entry) {
                                    if telemetry_writable.load(Ordering::Relaxed) {
                                        if let Err(error) = tlog.record(&entry) {
                                            if telemetry_writable.swap(false, Ordering::Relaxed) {
                                                // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                                                eprintln!(
                                                    "[vanet-runner] warning: cannot append to \
                                                     telemetry log {:?}: {error}; further \
                                                     telemetry writes disabled",
                                                    tlog.path()
                                                );
                                            }
                                        }
                                    }
                                }
                                // A job can re-run with its journal line
                                // intact (only its telemetry line was lost);
                                // re-recording it would duplicate the line
                                // and break byte-level replay determinism, so
                                // append only on a true journal miss.
                                if let Some(j) = &journal {
                                    if j.lookup(job.key()).is_none()
                                        && journal_writable.load(Ordering::Relaxed)
                                    {
                                        let record = JournalEntry {
                                            key: job.key(),
                                            campaign: plan.name.clone(),
                                            label: plan.cells[job.cell].label.clone(),
                                            seed: job.scenario.seed,
                                            report: report.clone(),
                                        };
                                        if let Err(error) = j.record(&record) {
                                            if journal_writable.swap(false, Ordering::Relaxed) {
                                                // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                                                eprintln!(
                                                    "[vanet-runner] warning: cannot append to \
                                                     journal {:?}: {error}; further journal \
                                                     writes disabled",
                                                    j.path()
                                                );
                                            }
                                        }
                                    }
                                }
                                return Ok(report);
                            }
                            Err(payload) => {
                                last_error = panic_message(payload.as_ref());
                                if attempt + 1 < allowed_attempts {
                                    // Recorded, never slept: resume must not
                                    // depend on wall-clock waits.
                                    backoff_s.push(f64::from(1u32 << attempt.min(30)));
                                }
                            }
                        }
                    }
                    Err((backoff_s, last_error))
                },
                |i, done, n| {
                    if self.progress {
                        let job = &round[to_run[i]];
                        let mut err = stderr.lock().expect("stderr lock poisoned");
                        let _ = writeln!(
                            err,
                            "[vanet-runner] {done}/{n} {} on {} (seed {})",
                            job.protocol, plan.cells[job.cell].label, job.scenario.seed
                        );
                    }
                },
            );
            for (slot, outcome) in to_run.into_iter().zip(fresh) {
                match outcome {
                    Ok(report) => resolved[slot] = Some(report),
                    Err((backoff_s, error)) => {
                        let job = &round[slot];
                        frozen[job.cell] = true;
                        // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                        eprintln!(
                            "[vanet-runner] warning: quarantined {} on {} (seed {}) after {} \
                             attempt(s): {error}",
                            job.protocol,
                            plan.cells[job.cell].label,
                            job.scenario.seed,
                            allowed_attempts
                        );
                        let entry = QuarantineEntry {
                            key: job.key(),
                            campaign: plan.name.clone(),
                            label: plan.cells[job.cell].label.clone(),
                            seed: job.scenario.seed,
                            attempts: allowed_attempts,
                            backoff_s,
                            error: error.clone(),
                        };
                        if let Some(j) = &journal {
                            if journal_writable.load(Ordering::Relaxed) {
                                if let Err(io_error) = j.record_quarantine(&entry) {
                                    if journal_writable.swap(false, Ordering::Relaxed) {
                                        // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
                                        eprintln!(
                                            "[vanet-runner] warning: cannot append to journal \
                                             {:?}: {io_error}; further journal writes disabled",
                                            j.path()
                                        );
                                    }
                                }
                            }
                        }
                        quarantined.push(QuarantinedJob {
                            label: plan.cells[job.cell].label.clone(),
                            protocol: job.protocol,
                            seed: job.scenario.seed,
                            attempts: allowed_attempts,
                            error,
                        });
                    }
                }
            }
            // Jobs are cell-major within a round, so pushing in round order
            // keeps every cell's reports in replicate order. Quarantined
            // slots simply contribute no report.
            for (job, report) in round.iter().zip(resolved) {
                if let Some(report) = report {
                    reports[job.cell].push(report);
                }
            }
            round = next_adaptive_round(plan, &kept, &reports, &frozen);
        }
        let elapsed = started.elapsed();

        let cells: Vec<CellSummary> = kept
            .iter()
            .filter_map(|&index| {
                let cell = &plan.cells[index];
                // A cell whose every job was quarantined has no reports and
                // no summary; it is reported via `quarantined` instead.
                Summary::from_reports(&reports[index]).map(|summary| CellSummary {
                    label: cell.label.clone(),
                    scenario: cell.scenario.name.clone(),
                    protocol: cell.protocol,
                    summary,
                })
            })
            .collect();
        if self.progress {
            let quarantine_note = if quarantined.is_empty() {
                String::new()
            } else {
                format!(", {} quarantined", quarantined.len())
            };
            // lint: allow(D5) — operator-facing degradation warning on an IO/journal failure path; never on the sim path and never on stdout (exports stay parseable).
            eprintln!(
                "[vanet-runner] campaign '{}' finished: {} jobs executed, {} cached{}, {:.2}s",
                plan.name,
                executed,
                cached,
                quarantine_note,
                elapsed.as_secs_f64()
            );
        }
        CampaignResults {
            campaign: plan.name.clone(),
            workers: self.workers,
            elapsed,
            executed_jobs: executed,
            cached_jobs: cached,
            cells,
            quarantined,
        }
    }
}

/// Renders a caught panic payload as the single line stored in quarantine
/// records: the `&str`/`String` message panics carry, or a placeholder for
/// exotic payloads.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    message.lines().next().unwrap_or_default().to_owned()
}

/// The next batch of adaptive jobs for every kept `ConfidenceWidth` cell
/// whose watched metric's 95% CI is still wider than its target and whose
/// cap is not reached.
///
/// The batch is sized from the observed variance instead of one seed at a
/// time: a CI of half-width `t·s/√n` shrinks below the target once
/// `n ≥ (t·s/target)²`, so the round schedules the shortfall in one go —
/// clamped to at most double the completed count (the variance estimate `s`
/// is noisy at small `n`, so growth stays geometric rather than trusting
/// one early estimate with a huge extrapolation) and to the cell's cap.
/// Decisions depend only on the deterministic reports, so the round
/// structure is identical across worker counts and resumes.
///
/// Frozen cells (any quarantined job) are excluded entirely: their completed
/// count can no longer be trusted to derive the next replicate seed, and
/// re-deriving the quarantined seed would deterministically re-panic forever.
fn next_adaptive_round(
    plan: &CampaignPlan,
    kept: &[usize],
    reports: &[Vec<Report>],
    frozen: &[bool],
) -> Vec<PlanJob> {
    let mut next = Vec::new();
    for &index in kept {
        if frozen[index] {
            continue;
        }
        let ReplicationPolicy::ConfidenceWidth {
            metric,
            target_width,
            ..
        } = &plan.cells[index].replication
        else {
            continue;
        };
        let done = &reports[index];
        if done.is_empty() {
            continue;
        }
        let cap = plan.cells[index].replication.max_replications();
        if done.len() >= cap {
            continue;
        }
        let summary = Summary::from_reports(done).expect("adaptive cell ran its minimum");
        let stat = summary
            .metric(metric)
            .expect("metric validated before the first round");
        if stat.ci95 > *target_width {
            let t = t_critical_95(done.len().saturating_sub(1));
            let needed_f = (t * stat.std_dev / *target_width).powi(2);
            let needed = if needed_f.is_finite() {
                needed_f.ceil() as usize
            } else {
                cap
            };
            let batch = needed
                .saturating_sub(done.len())
                .clamp(1, done.len())
                .min(cap - done.len());
            for extra in 0..batch {
                next.push(plan.job(index, done.len() + extra));
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_core::Scenario;
    use vanet_sim::SimDuration;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("tiny")
            .scenario(
                "hw",
                Scenario::highway(10)
                    .with_flows(2)
                    .with_duration(SimDuration::from_secs(10.0)),
            )
            .protocols([ProtocolKind::Flooding])
            .replications(2)
    }

    #[test]
    fn runs_and_aggregates() {
        let results = Runner::new().with_workers(2).run(&tiny_spec());
        assert_eq!(results.cells.len(), 1);
        let cell = &results.cells[0];
        assert_eq!(cell.label, "hw");
        assert_eq!(cell.protocol, ProtocolKind::Flooding);
        assert_eq!(cell.summary.replications, 2);
        assert!(cell.summary.data_sent.mean > 0.0);
        assert_eq!(results.total_runs(), 2);
        assert_eq!(results.executed_jobs, 2);
        assert_eq!(results.cached_jobs, 0);
    }

    #[test]
    #[should_panic(expected = "empty scenario or protocol set")]
    fn empty_spec_panics() {
        let _ = Runner::new().run(&CampaignSpec::new("empty"));
    }

    #[test]
    #[should_panic(expected = "has no cells")]
    fn empty_plan_panics() {
        let _ = Runner::new().run_plan(&CampaignPlan::new("empty"));
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_adaptive_metric_panics() {
        let plan = CampaignPlan::new("bad").cell_with(
            "x",
            Scenario::highway(4).with_duration(SimDuration::from_secs(1.0)),
            ProtocolKind::Flooding,
            ReplicationPolicy::confidence_width("not_a_metric", 0.1, 2, 4),
        );
        let _ = Runner::new().run_plan(&plan);
    }

    fn shard_spec() -> CampaignSpec {
        CampaignSpec::new("sharded")
            .scenario(
                "a",
                Scenario::highway(8)
                    .with_flows(1)
                    .with_duration(SimDuration::from_secs(5.0)),
            )
            .scenario(
                "b",
                Scenario::highway(12)
                    .with_flows(1)
                    .with_duration(SimDuration::from_secs(5.0)),
            )
            .protocols([ProtocolKind::Flooding, ProtocolKind::Greedy])
            .replications(2)
    }

    #[test]
    fn shards_are_disjoint_and_cover_the_full_campaign() {
        let spec = shard_spec();
        let full = Runner::new().with_workers(2).run(&spec);
        let count = 3;
        let mut union: Vec<CellSummary> = Vec::new();
        for index in 0..count {
            let shard = Runner::new()
                .with_workers(2)
                .with_shard(index, count)
                .run(&spec);
            for cell in shard.cells {
                assert!(
                    !union
                        .iter()
                        .any(|c| c.label == cell.label && c.protocol == cell.protocol),
                    "cell {}/{} appeared in two shards",
                    cell.label,
                    cell.protocol
                );
                union.push(cell);
            }
        }
        assert_eq!(union.len(), full.cells.len(), "shards must cover all cells");
        // Shard execution must not change any cell's result: compare against
        // the unsharded run cell by cell.
        for cell in &full.cells {
            let from_shard = union
                .iter()
                .find(|c| c.label == cell.label && c.protocol == cell.protocol)
                .expect("cell covered by some shard");
            assert_eq!(from_shard.summary, cell.summary, "sharding altered a cell");
        }
    }

    fn report_with_ratio(delivery_ratio: f64) -> Report {
        Report {
            protocol: "FLOOD".to_owned(),
            scenario: "hw".to_owned(),
            data_sent: 10,
            data_delivered: (delivery_ratio * 10.0) as u64,
            duplicate_deliveries: 0,
            delivery_ratio,
            avg_delay_s: 0.01,
            max_delay_s: 0.02,
            avg_hops: 2.0,
            control_packets: 5,
            control_bytes: 100,
            data_transmissions: 20,
            control_per_delivered: 1.0,
            transmissions_per_delivered: 2.0,
            route_errors: 0,
            drops: 1,
            avg_neighbors: 4.0,
            bundles_stored: 0,
            bundles_forwarded: 0,
            bundles_expired: 0,
            bundles_evicted: 0,
            custody_transfers: 0,
            buffer_peak: 0,
        }
    }

    #[test]
    fn adaptive_batches_scale_with_variance_but_stay_geometric() {
        let plan = CampaignPlan::new("batch").cell_with(
            "x",
            Scenario::highway(4).with_duration(SimDuration::from_secs(1.0)),
            ProtocolKind::Flooding,
            ReplicationPolicy::confidence_width("delivery_ratio", 0.3, 2, 10),
        );
        let kept = [0usize];

        // High variance at n=2: the t-projection wants hundreds of seeds,
        // but the batch is capped at doubling the completed count.
        let noisy = vec![vec![report_with_ratio(0.0), report_with_ratio(1.0)]];
        let round = next_adaptive_round(&plan, &kept, &noisy, &[false]);
        assert_eq!(round.len(), 2, "batch doubles, never extrapolates further");
        let base = plan.cells[0].scenario.seed;
        let seeds: Vec<u64> = round.iter().map(|j| j.scenario.seed).collect();
        assert_eq!(
            seeds,
            vec![base + 2, base + 3],
            "replicates continue in order"
        );

        // Converged cell: no follow-up jobs.
        let tight = vec![vec![report_with_ratio(0.5), report_with_ratio(0.5)]];
        assert!(next_adaptive_round(&plan, &kept, &tight, &[false]).is_empty());

        // Near the cap the batch is truncated to the remaining budget.
        let mut at_nine = vec![Vec::new()];
        for i in 0..9 {
            at_nine[0].push(report_with_ratio(if i % 2 == 0 { 0.0 } else { 1.0 }));
        }
        let round = next_adaptive_round(&plan, &kept, &at_nine, &[false]);
        assert_eq!(round.len(), 1, "cap leaves room for exactly one more");
        assert_eq!(round[0].scenario.seed, base + 9);
    }

    fn poisoned_plan() -> CampaignPlan {
        // One healthy cell and one cell whose scenario panics at t=1s via
        // the deterministic Poison chaos fault.
        let healthy = Scenario::highway(8)
            .with_flows(1)
            .with_duration(SimDuration::from_secs(5.0));
        let poisoned = Scenario::highway(8)
            .with_flows(1)
            .with_duration(SimDuration::from_secs(5.0))
            .with_faults(vanet_core::FaultPlan::new().poison(1.0));
        CampaignPlan::new("chaos")
            .cell("ok", healthy, ProtocolKind::Flooding)
            .cell("bad", poisoned, ProtocolKind::Flooding)
    }

    #[test]
    fn poisoned_job_is_quarantined_not_fatal() {
        let results = Runner::new().with_workers(2).run_plan(&poisoned_plan());
        assert_eq!(results.cells.len(), 1, "poisoned cell has no summary");
        assert_eq!(results.cells[0].label, "ok");
        assert_eq!(results.quarantined.len(), 1);
        let q = &results.quarantined[0];
        assert_eq!(q.label, "bad");
        assert_eq!(q.attempts, 1, "default allows a single attempt");
        assert!(
            q.error.contains("poison fault fired"),
            "quarantine carries the panic message, got {:?}",
            q.error
        );
    }

    #[test]
    fn retries_are_recorded_and_replayed_from_the_journal() {
        let dir =
            std::env::temp_dir().join(format!("vanet-engine-quarantine-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let plan = poisoned_plan();
        let first = Runner::new()
            .with_workers(2)
            .with_journal(&dir)
            .with_max_retries(2)
            .run_plan(&plan);
        assert_eq!(first.quarantined.len(), 1);
        assert_eq!(first.quarantined[0].attempts, 3, "1 + 2 retries");

        // Resume: the quarantine replays from the journal, nothing re-runs.
        let resumed = Runner::new()
            .with_workers(2)
            .with_journal(&dir)
            .with_max_retries(2)
            .run_plan(&plan);
        assert_eq!(resumed.executed_jobs, 0, "quarantine replayed, not re-run");
        assert_eq!(resumed.cached_jobs, 1, "healthy cell came from the cache");
        assert_eq!(resumed.quarantined, first.quarantined);
        assert_eq!(resumed.cells.len(), 1);
        assert_eq!(resumed.cells[0].summary, first.cells[0].summary);

        // Raising the allowance re-runs the job for a chance to heal; a
        // deterministic poison panics again and is re-quarantined.
        let raised = Runner::new()
            .with_workers(2)
            .with_journal(&dir)
            .with_max_retries(4)
            .run_plan(&plan);
        assert_eq!(raised.executed_jobs, 1, "raised allowance re-runs the job");
        assert_eq!(raised.quarantined[0].attempts, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_journal_degrades_to_a_warning() {
        // A file where the journal *directory* should be: create_dir_all
        // fails, the runner warns and completes without persistence.
        let path =
            std::env::temp_dir().join(format!("vanet-engine-notadir-{}", std::process::id()));
        std::fs::write(&path, b"not a directory").unwrap();
        let results = Runner::new()
            .with_workers(2)
            .with_journal(&path)
            .run(&tiny_spec());
        assert_eq!(results.cells.len(), 1);
        assert_eq!(results.executed_jobs, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        let _ = Runner::new().with_shard(3, 3);
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shard_count_panics() {
        let _ = Runner::new().with_shard(0, 0);
    }
}
