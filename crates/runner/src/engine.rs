//! The campaign execution engine.
//!
//! [`Runner`] expands a [`CampaignSpec`] into jobs, executes them on the
//! work-stealing pool from `vanet_sim::pool`, and reduces each cell's
//! replications into a [`Summary`]. Determinism contract: because every job
//! is seeded at expansion time and results are reduced in job order, the
//! produced [`CampaignResults`] are identical for any worker count — the
//! `campaign_is_deterministic_across_worker_counts` integration test pins
//! this down.

use crate::campaign::CampaignSpec;
use crate::summary::Summary;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vanet_core::{run_scenario, ProtocolKind, Report};
use vanet_sim::pool::{available_workers, parallel_map_with_progress};

/// One aggregated (scenario × protocol) cell of a finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The scenario label from the spec.
    pub label: String,
    /// The scenario's own name (e.g. "highway-40").
    pub scenario: String,
    /// The protocol evaluated.
    pub protocol: ProtocolKind,
    /// Per-metric statistics over the replications.
    pub summary: Summary,
}

impl CellSummary {
    /// Collapses the cell to a mean-only [`Report`] (legacy reduction).
    #[must_use]
    pub fn mean_report(&self) -> Report {
        self.summary
            .mean_report(self.protocol.name(), &self.scenario)
    }
}

/// The outcome of running a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResults {
    /// The campaign name.
    pub campaign: String,
    /// Number of workers the campaign ran on.
    pub workers: usize,
    /// Wall-clock execution time (not part of the determinism contract).
    pub elapsed: Duration,
    /// One aggregated cell per (scenario × protocol) pair, in spec order.
    pub cells: Vec<CellSummary>,
}

impl CampaignResults {
    /// Total replications across all cells.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.cells.iter().map(|c| c.summary.replications).sum()
    }
}

/// Executes campaigns on a pool of worker threads.
#[derive(Debug, Clone)]
pub struct Runner {
    workers: usize,
    progress: bool,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner sized to the available hardware parallelism, silent.
    #[must_use]
    pub fn new() -> Self {
        Runner {
            workers: available_workers(),
            progress: false,
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables per-job progress lines on stderr.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job of `spec` and aggregates per-cell summaries.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no scenarios or no protocols.
    #[must_use]
    pub fn run(&self, spec: &CampaignSpec) -> CampaignResults {
        assert!(
            !spec.scenarios.is_empty() && !spec.protocols.is_empty(),
            "campaign '{}' has an empty scenario or protocol set",
            spec.name
        );
        let jobs = spec.jobs();
        let total = jobs.len();
        if self.progress {
            eprintln!(
                "[vanet-runner] campaign '{}': {} cells x {} replications = {} jobs on {} workers",
                spec.name,
                spec.cell_count(),
                spec.replications.max(1),
                total,
                self.workers
            );
        }
        let started = Instant::now();
        // stderr is locked per line so concurrent workers never interleave
        // within a progress line.
        let stderr = Mutex::new(std::io::stderr());
        let reports = parallel_map_with_progress(
            total,
            self.workers,
            |i| {
                let job = &jobs[i];
                run_scenario(job.scenario.clone(), job.protocol)
            },
            |i, done, n| {
                if self.progress {
                    let job = &jobs[i];
                    let (label, _, _) = spec.cell(job.cell);
                    let mut err = stderr.lock().expect("stderr lock poisoned");
                    let _ = writeln!(
                        err,
                        "[vanet-runner] {done}/{n} {} on {} (seed {})",
                        job.protocol, label, job.scenario.seed
                    );
                }
            },
        );
        let elapsed = started.elapsed();

        let replications = spec.replications.max(1);
        let cells = reports
            .chunks(replications)
            .enumerate()
            .map(|(cell, cell_reports)| {
                let (label, scenario, protocol) = spec.cell(cell);
                CellSummary {
                    label: label.to_owned(),
                    scenario: scenario.name.clone(),
                    protocol,
                    summary: Summary::from_reports(cell_reports)
                        .expect("every cell has >= 1 replication"),
                }
            })
            .collect();
        if self.progress {
            eprintln!(
                "[vanet-runner] campaign '{}' finished: {} jobs in {:.2}s",
                spec.name,
                total,
                elapsed.as_secs_f64()
            );
        }
        CampaignResults {
            campaign: spec.name.clone(),
            workers: self.workers,
            elapsed,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_core::Scenario;
    use vanet_sim::SimDuration;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("tiny")
            .scenario(
                "hw",
                Scenario::highway(10)
                    .with_flows(2)
                    .with_duration(SimDuration::from_secs(10.0)),
            )
            .protocols([ProtocolKind::Flooding])
            .replications(2)
    }

    #[test]
    fn runs_and_aggregates() {
        let results = Runner::new().with_workers(2).run(&tiny_spec());
        assert_eq!(results.cells.len(), 1);
        let cell = &results.cells[0];
        assert_eq!(cell.label, "hw");
        assert_eq!(cell.protocol, ProtocolKind::Flooding);
        assert_eq!(cell.summary.replications, 2);
        assert!(cell.summary.data_sent.mean > 0.0);
        assert_eq!(results.total_runs(), 2);
    }

    #[test]
    #[should_panic(expected = "empty scenario or protocol set")]
    fn empty_spec_panics() {
        let _ = Runner::new().run(&CampaignSpec::new("empty"));
    }
}
