//! Throughput benchmarks (`vanet-campaign --bench` / `--bench-fleet`).
//!
//! `--bench` runs one megacity-scale simulation single-threaded, measures
//! scheduler throughput (events/sec) and peak RSS, and merges the result
//! into a small flat JSON file (`BENCH_hotpath.json` by default). The file
//! holds two labelled measurements — `baseline` (committed before a perf
//! change) and `current` (the state under test) — plus their speedup, giving
//! every PR a recorded perf trajectory.
//!
//! `--bench-fleet` measures *capacity* instead of per-core latency: one
//! independent simulation per core (sharded over the workspace worker pool),
//! reporting aggregate events/sec across cores, per-core events/sec, and the
//! process-wide peak RSS (`BENCH_fleet.json`). The same baseline/current
//! labelling applies; the two files together answer "how fast is one core"
//! and "how much fleet can this box simulate".
//!
//! [`gate_events_per_sec`] turns a committed bench file into a CI regression
//! gate: a fresh measurement failing to reach a fraction of the committed
//! events/sec fails the job instead of silently uploading a slower artifact.

use std::time::Instant;
use vanet_core::{ProtocolKind, Report, Scenario, Simulation};
use vanet_sim::pool::parallel_map_indexed;
use vanet_sim::SimDuration;

/// One labelled throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Scheduler events processed.
    pub events: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Peak resident set size of the process, bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
}

/// The outcome of one `--bench` invocation.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Scenario name (e.g. `megacity-10000`).
    pub scenario: String,
    /// Protocol the fleet ran.
    pub protocol: ProtocolKind,
    /// Simulated duration of the run, seconds.
    pub duration_s: f64,
    /// The measurement.
    pub run: BenchRun,
    /// The simulation report (for eyeballing that the run did real work).
    pub report: Report,
}

/// Peak resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Runs the hot-path benchmark: `vehicles` on the megacity grid for
/// `duration_s` simulated seconds under `protocol`, single-threaded (the
/// point is per-core event throughput, not pool scaling).
#[must_use]
pub fn run_hotpath_bench(vehicles: usize, duration_s: f64, protocol: ProtocolKind) -> BenchOutcome {
    let scenario = Scenario::megacity(vehicles).with_duration(SimDuration::from_secs(duration_s));
    let scenario_name = scenario.name.clone();
    let mut sim = Simulation::new(scenario, protocol);
    let started = Instant::now();
    let report = sim.run();
    let wall_s = started.elapsed().as_secs_f64();
    let events = sim.processed_events();
    BenchOutcome {
        scenario: scenario_name,
        protocol,
        duration_s,
        run: BenchRun {
            events,
            wall_s,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
            peak_rss_bytes: peak_rss_bytes(),
        },
        report,
    }
}

/// Runs the hot-path benchmark with a streaming telemetry tap attached,
/// returning the outcome plus the sealed tap. Bench numbers measured with
/// the tap are *not* comparable to untapped ones — this entry point exists
/// so CI can produce a `telemetry.jsonl` artifact from the bench workload
/// while the committed gate keeps running the untapped build.
#[must_use]
pub fn run_hotpath_bench_tapped(
    vehicles: usize,
    duration_s: f64,
    protocol: ProtocolKind,
    window_s: f64,
    regions_per_axis: usize,
) -> (BenchOutcome, vanet_core::WindowedTap) {
    let scenario = Scenario::megacity(vehicles).with_duration(SimDuration::from_secs(duration_s));
    let scenario_name = scenario.name.clone();
    let tap = vanet_core::WindowedTap::new(SimDuration::from_secs(window_s), regions_per_axis);
    let mut sim = Simulation::with_telemetry(scenario, protocol, tap);
    let started = Instant::now();
    let report = sim.run();
    let wall_s = started.elapsed().as_secs_f64();
    let events = sim.processed_events();
    let outcome = BenchOutcome {
        scenario: scenario_name,
        protocol,
        duration_s,
        run: BenchRun {
            events,
            wall_s,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
            peak_rss_bytes: peak_rss_bytes(),
        },
        report,
    };
    (outcome, sim.into_telemetry())
}

/// One fleet-capacity measurement: `shards` independent simulations, one per
/// worker, run concurrently on the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Number of concurrent simulations (= workers used).
    pub shards: usize,
    /// Scheduler events processed across all shards.
    pub total_events: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// Total events divided by batch wall-clock — the box's capacity.
    pub aggregate_events_per_sec: f64,
    /// Each shard's events divided by its own wall-clock, in shard order.
    pub per_core_events_per_sec: Vec<f64>,
    /// Peak resident set size of the process, bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
}

impl FleetRun {
    /// Mean of the per-core rates — the "single-core events/sec" a fleet
    /// measurement is compared to a plain `--bench` run by.
    #[must_use]
    pub fn mean_core_events_per_sec(&self) -> f64 {
        if self.per_core_events_per_sec.is_empty() {
            0.0
        } else {
            self.per_core_events_per_sec.iter().sum::<f64>()
                / self.per_core_events_per_sec.len() as f64
        }
    }
}

/// The outcome of one `--bench-fleet` invocation.
#[derive(Debug, Clone)]
pub struct FleetBenchOutcome {
    /// Scenario name (e.g. `megacity-100000`).
    pub scenario: String,
    /// Protocol every shard ran.
    pub protocol: ProtocolKind,
    /// Simulated duration of each shard, seconds.
    pub duration_s: f64,
    /// The measurement.
    pub run: FleetRun,
}

/// Runs the fleet-capacity benchmark: `shards` independent megacity
/// simulations of `vehicles` vehicles each, one per pool worker, with
/// per-shard seeds `1 + shard` (shard 0 therefore reproduces the single-core
/// `--bench` workload exactly). Returns aggregate and per-core throughput.
#[must_use]
pub fn run_fleet_bench(
    vehicles: usize,
    duration_s: f64,
    protocol: ProtocolKind,
    shards: usize,
) -> FleetBenchOutcome {
    let shards = shards.max(1);
    let scenario = Scenario::megacity(vehicles).with_duration(SimDuration::from_secs(duration_s));
    let scenario_name = scenario.name.clone();
    let started = Instant::now();
    let shard_results: Vec<(u64, f64)> = parallel_map_indexed(shards, shards, |shard| {
        let mut sim = Simulation::new(scenario.clone().with_seed(1 + shard as u64), protocol);
        let shard_started = Instant::now();
        let _ = sim.run();
        (
            sim.processed_events(),
            shard_started.elapsed().as_secs_f64(),
        )
    });
    let wall_s = started.elapsed().as_secs_f64();
    let total_events: u64 = shard_results.iter().map(|&(events, _)| events).sum();
    FleetBenchOutcome {
        scenario: scenario_name,
        protocol,
        duration_s,
        run: FleetRun {
            shards,
            total_events,
            wall_s,
            aggregate_events_per_sec: if wall_s > 0.0 {
                total_events as f64 / wall_s
            } else {
                0.0
            },
            per_core_events_per_sec: shard_results
                .iter()
                .map(|&(events, shard_wall)| {
                    if shard_wall > 0.0 {
                        events as f64 / shard_wall
                    } else {
                        0.0
                    }
                })
                .collect(),
            peak_rss_bytes: peak_rss_bytes(),
        },
    }
}

/// Extracts the numeric value of `"key":<number>` from flat JSON. Tolerant of
/// whitespace; returns `None` when the key is absent.
pub(crate) fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the value of `"key": "string"` from flat JSON.
pub(crate) fn json_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

fn parse_run(text: &str, label: &str) -> Option<BenchRun> {
    Some(BenchRun {
        events: json_number(text, &format!("{label}_events"))? as u64,
        wall_s: json_number(text, &format!("{label}_wall_s"))?,
        events_per_sec: json_number(text, &format!("{label}_events_per_sec"))?,
        peak_rss_bytes: json_number(text, &format!("{label}_peak_rss_bytes"))? as u64,
    })
}

fn render_run(out: &mut String, label: &str, run: &BenchRun) {
    out.push_str(&format!(
        "  \"{label}_events\": {},\n  \"{label}_wall_s\": {:.3},\n  \
         \"{label}_events_per_sec\": {:.0},\n  \"{label}_peak_rss_bytes\": {},\n",
        run.events, run.wall_s, run.events_per_sec, run.peak_rss_bytes
    ));
}

/// Renders the bench file contents: `outcome` stored under `label`
/// (`"baseline"` or `"current"`), preserving the *other* label from
/// `existing` (the previous file contents, if any). When both measurements
/// are present a `speedup` field (current / baseline events/sec) is added.
///
/// Two measurements are only comparable when they ran the same workload:
/// the other label is preserved **only if** the existing file's scenario,
/// protocol and simulated duration match this outcome's. On mismatch the
/// file is rewritten with the new measurement alone, so a speedup never
/// silently compares different workloads. (Hardware comparability remains
/// the operator's responsibility — measure baseline and current on the same
/// machine.)
#[must_use]
pub fn render_bench_json(existing: Option<&str>, label: &str, outcome: &BenchOutcome) -> String {
    let other_label = if label == "baseline" {
        "current"
    } else {
        "baseline"
    };
    let other = match existing {
        Some(text)
            if json_string(text, "scenario").as_deref() == Some(outcome.scenario.as_str())
                && json_string(text, "protocol").as_deref() == Some(outcome.protocol.name())
                && json_number(text, "duration_s") == Some(outcome.duration_s) =>
        {
            parse_run(text, other_label)
        }
        _ => None,
    };

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", outcome.scenario));
    out.push_str(&format!("  \"protocol\": \"{}\",\n", outcome.protocol));
    out.push_str(&format!("  \"duration_s\": {},\n", outcome.duration_s));
    let (baseline, current) = if label == "baseline" {
        (Some(&outcome.run), other.as_ref())
    } else {
        (other.as_ref(), Some(&outcome.run))
    };
    if let Some(b) = baseline {
        render_run(&mut out, "baseline", b);
    }
    if let Some(c) = current {
        render_run(&mut out, "current", c);
    }
    if let (Some(b), Some(c)) = (baseline, current) {
        if b.events_per_sec > 0.0 {
            out.push_str(&format!(
                "  \"speedup\": {:.2},\n",
                c.events_per_sec / b.events_per_sec
            ));
        }
    }
    // Trim the trailing comma of the last field.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Extracts `"key": [n, n, ...]` (a flat numeric array) from flat JSON.
pub(crate) fn json_number_array(text: &str, key: &str) -> Option<Vec<f64>> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    body.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().ok())
        .collect()
}

fn parse_fleet_run(text: &str, label: &str) -> Option<FleetRun> {
    let per_core = json_number_array(text, &format!("{label}_per_core_events_per_sec"))?;
    Some(FleetRun {
        shards: json_number(text, &format!("{label}_shards"))? as usize,
        total_events: json_number(text, &format!("{label}_total_events"))? as u64,
        wall_s: json_number(text, &format!("{label}_wall_s"))?,
        aggregate_events_per_sec: json_number(text, &format!("{label}_aggregate_events_per_sec"))?,
        per_core_events_per_sec: per_core,
        peak_rss_bytes: json_number(text, &format!("{label}_peak_rss_bytes"))? as u64,
    })
}

fn render_fleet_run(out: &mut String, label: &str, run: &FleetRun) {
    let per_core: Vec<String> = run
        .per_core_events_per_sec
        .iter()
        .map(|eps| format!("{eps:.0}"))
        .collect();
    out.push_str(&format!(
        "  \"{label}_shards\": {},\n  \"{label}_total_events\": {},\n  \
         \"{label}_wall_s\": {:.3},\n  \"{label}_aggregate_events_per_sec\": {:.0},\n  \
         \"{label}_per_core_events_per_sec\": [{}],\n  \"{label}_peak_rss_bytes\": {},\n",
        run.shards,
        run.total_events,
        run.wall_s,
        run.aggregate_events_per_sec,
        per_core.join(", "),
        run.peak_rss_bytes
    ));
}

/// Renders the fleet-bench file: `outcome` stored under `label` (`"baseline"`
/// or `"current"`), preserving the *other* label from `existing` under the
/// same mismatched-workload refusal as [`render_bench_json`] — scenario,
/// protocol and simulated duration must match or the old measurement is
/// discarded. Shard counts *may* differ between labels (a 1-core baseline
/// against an N-core current is exactly the "how much did sharding buy"
/// question): `speedup_single_core` compares mean per-core rates whenever
/// both labels are present, while `speedup_aggregate` is only emitted when
/// the shard counts match.
#[must_use]
pub fn render_fleet_bench_json(
    existing: Option<&str>,
    label: &str,
    outcome: &FleetBenchOutcome,
) -> String {
    let other_label = if label == "baseline" {
        "current"
    } else {
        "baseline"
    };
    let other = match existing {
        Some(text)
            if json_string(text, "scenario").as_deref() == Some(outcome.scenario.as_str())
                && json_string(text, "protocol").as_deref() == Some(outcome.protocol.name())
                && json_number(text, "duration_s") == Some(outcome.duration_s) =>
        {
            parse_fleet_run(text, other_label)
        }
        _ => None,
    };

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", outcome.scenario));
    out.push_str(&format!("  \"protocol\": \"{}\",\n", outcome.protocol));
    out.push_str(&format!("  \"duration_s\": {},\n", outcome.duration_s));
    let (baseline, current) = if label == "baseline" {
        (Some(&outcome.run), other.as_ref())
    } else {
        (other.as_ref(), Some(&outcome.run))
    };
    if let Some(b) = baseline {
        render_fleet_run(&mut out, "baseline", b);
    }
    if let Some(c) = current {
        render_fleet_run(&mut out, "current", c);
    }
    if let (Some(b), Some(c)) = (baseline, current) {
        if b.mean_core_events_per_sec() > 0.0 {
            out.push_str(&format!(
                "  \"speedup_single_core\": {:.2},\n",
                c.mean_core_events_per_sec() / b.mean_core_events_per_sec()
            ));
        }
        if b.shards == c.shards && b.aggregate_events_per_sec > 0.0 {
            out.push_str(&format!(
                "  \"speedup_aggregate\": {:.2},\n",
                c.aggregate_events_per_sec / b.aggregate_events_per_sec
            ));
        }
    }
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Mean of a label's per-core rates in a fleet bench file, if present.
fn fleet_mean_core(committed: &str, label: &str) -> Option<f64> {
    let per_core = json_number_array(committed, &format!("{label}_per_core_events_per_sec"))?;
    if per_core.is_empty() {
        None
    } else {
        Some(per_core.iter().sum::<f64>() / per_core.len() as f64)
    }
}

/// The CI regression gate: compares a fresh events/sec measurement against
/// the committed bench file — `current_events_per_sec` for a hotpath file,
/// the mean of `current_per_core_events_per_sec` for a fleet file (each
/// falling back to the `baseline` label for baseline-only files).
///
/// Like the merge path, the gate refuses to compare different workloads:
/// the fresh run's scenario and protocol must match the committed file's.
/// (Simulated *duration* may differ — events/sec is a rate, and CI
/// deliberately gates a shorter run against the committed full-length
/// trajectory.)
///
/// Returns the measured/committed ratio on success.
///
/// # Errors
///
/// * the committed file describes a different scenario or protocol;
/// * the committed file holds no events/sec measurement to gate against;
/// * the ratio falls below `min_ratio` (the regression being gated).
pub fn gate_events_per_sec(
    committed: &str,
    measured_scenario: &str,
    measured_protocol: &str,
    measured_events_per_sec: f64,
    min_ratio: f64,
) -> Result<f64, String> {
    let scenario = json_string(committed, "scenario");
    let protocol = json_string(committed, "protocol");
    if scenario.as_deref() != Some(measured_scenario)
        || protocol.as_deref() != Some(measured_protocol)
    {
        return Err(format!(
            "committed bench file measures {:?}/{:?}, not the fresh run's \
             {measured_scenario:?}/{measured_protocol:?} — not comparable",
            scenario.as_deref().unwrap_or("?"),
            protocol.as_deref().unwrap_or("?"),
        ));
    }
    let reference = json_number(committed, "current_events_per_sec")
        .or_else(|| json_number(committed, "baseline_events_per_sec"))
        .or_else(|| fleet_mean_core(committed, "current"))
        .or_else(|| fleet_mean_core(committed, "baseline"))
        .ok_or_else(|| "committed bench file has no events/sec measurement".to_owned())?;
    if reference <= 0.0 {
        return Err(format!(
            "committed events/sec {reference} is not a usable gate reference"
        ));
    }
    let ratio = measured_events_per_sec / reference;
    if ratio < min_ratio {
        return Err(format!(
            "events/sec regressed: measured {measured_events_per_sec:.0} is {:.0}% of the \
             committed {reference:.0} (gate: {:.0}%)",
            ratio * 100.0,
            min_ratio * 100.0
        ));
    }
    Ok(ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(eps: f64) -> BenchOutcome {
        BenchOutcome {
            scenario: "megacity-10".to_owned(),
            protocol: ProtocolKind::Greedy,
            duration_s: 20.0,
            run: BenchRun {
                events: 1_000,
                wall_s: 1_000.0 / eps,
                events_per_sec: eps,
                peak_rss_bytes: 42 * 1024,
            },
            report: vanet_core::Metrics::new().report("Greedy", "megacity-10"),
        }
    }

    #[test]
    fn render_then_merge_round_trips_and_computes_speedup() {
        let baseline = render_bench_json(None, "baseline", &outcome(1_000.0));
        assert!(baseline.contains("\"baseline_events_per_sec\": 1000"));
        assert!(!baseline.contains("speedup"));
        let merged = render_bench_json(Some(&baseline), "current", &outcome(2_500.0));
        assert!(merged.contains("\"baseline_events_per_sec\": 1000"));
        assert!(merged.contains("\"current_events_per_sec\": 2500"));
        assert!(merged.contains("\"speedup\": 2.50"));
        let run = parse_run(&merged, "current").unwrap();
        assert_eq!(run.events, 1_000);
        assert_eq!(run.peak_rss_bytes, 42 * 1024);
    }

    #[test]
    fn incomparable_workloads_are_not_merged() {
        let baseline = render_bench_json(None, "baseline", &outcome(1_000.0));
        // Same scenario/protocol but a different simulated duration: the
        // baseline must be discarded instead of producing a bogus speedup.
        let mut shorter = outcome(2_500.0);
        shorter.duration_s = 5.0;
        let merged = render_bench_json(Some(&baseline), "current", &shorter);
        assert!(!merged.contains("baseline_events_per_sec"));
        assert!(!merged.contains("speedup"));
        // Different scenario: likewise discarded.
        let mut other = outcome(2_500.0);
        other.scenario = "megacity-99".to_owned();
        let merged = render_bench_json(Some(&baseline), "current", &other);
        assert!(!merged.contains("speedup"));
        // Identical workload still merges.
        let merged = render_bench_json(Some(&baseline), "current", &outcome(2_500.0));
        assert!(merged.contains("\"speedup\": 2.50"));
    }

    #[test]
    fn bench_runs_a_tiny_megacity() {
        let outcome = run_hotpath_bench(20, 2.0, ProtocolKind::Greedy);
        assert!(outcome.run.events > 0);
        assert!(outcome.run.events_per_sec > 0.0);
        assert_eq!(outcome.scenario, "megacity-20");
    }

    fn fleet_outcome(shards: usize, eps_per_core: f64) -> FleetBenchOutcome {
        FleetBenchOutcome {
            scenario: "megacity-10".to_owned(),
            protocol: ProtocolKind::Greedy,
            duration_s: 20.0,
            run: FleetRun {
                shards,
                total_events: 1_000 * shards as u64,
                wall_s: 1_000.0 / eps_per_core,
                aggregate_events_per_sec: eps_per_core * shards as f64,
                per_core_events_per_sec: vec![eps_per_core; shards],
                peak_rss_bytes: 7 * 1024,
            },
        }
    }

    #[test]
    fn fleet_render_then_merge_round_trips_and_computes_speedups() {
        let baseline = render_fleet_bench_json(None, "baseline", &fleet_outcome(2, 1_000.0));
        assert!(baseline.contains("\"baseline_per_core_events_per_sec\": [1000, 1000]"));
        assert!(!baseline.contains("speedup"));
        let merged =
            render_fleet_bench_json(Some(&baseline), "current", &fleet_outcome(2, 2_500.0));
        assert!(merged.contains("\"baseline_aggregate_events_per_sec\": 2000"));
        assert!(merged.contains("\"current_aggregate_events_per_sec\": 5000"));
        assert!(merged.contains("\"speedup_single_core\": 2.50"));
        assert!(merged.contains("\"speedup_aggregate\": 2.50"));
        let run = parse_fleet_run(&merged, "current").unwrap();
        assert_eq!(run.shards, 2);
        assert_eq!(run.total_events, 2_000);
        assert_eq!(run.per_core_events_per_sec, vec![2_500.0, 2_500.0]);
        assert_eq!(run.peak_rss_bytes, 7 * 1024);
    }

    #[test]
    fn fleet_single_core_baseline_merges_without_aggregate_speedup() {
        // The pre-PR measurement is one core; the current run shards over
        // four. Single-core speedup compares per-core means; the aggregate
        // speedup would compare different shard counts and is suppressed.
        let baseline = render_fleet_bench_json(None, "baseline", &fleet_outcome(1, 1_000.0));
        let merged =
            render_fleet_bench_json(Some(&baseline), "current", &fleet_outcome(4, 2_000.0));
        assert!(merged.contains("\"baseline_shards\": 1"));
        assert!(merged.contains("\"current_shards\": 4"));
        assert!(merged.contains("\"speedup_single_core\": 2.00"));
        assert!(!merged.contains("speedup_aggregate"));
    }

    #[test]
    fn fleet_incomparable_workloads_are_not_merged() {
        let baseline = render_fleet_bench_json(None, "baseline", &fleet_outcome(2, 1_000.0));
        // Different simulated duration: the baseline must be discarded.
        let mut shorter = fleet_outcome(2, 2_500.0);
        shorter.duration_s = 5.0;
        let merged = render_fleet_bench_json(Some(&baseline), "current", &shorter);
        assert!(!merged.contains("baseline_aggregate_events_per_sec"));
        assert!(!merged.contains("speedup"));
        // Different scenario: likewise discarded.
        let mut other = fleet_outcome(2, 2_500.0);
        other.scenario = "megacity-99".to_owned();
        let merged = render_fleet_bench_json(Some(&baseline), "current", &other);
        assert!(!merged.contains("speedup"));
        // Hotpath-shaped files do not leak into fleet merges either: the
        // workload matches but no fleet fields exist to preserve.
        let hotpath = render_bench_json(None, "baseline", &outcome(1_000.0));
        let merged = render_fleet_bench_json(Some(&hotpath), "current", &fleet_outcome(2, 2_500.0));
        assert!(!merged.contains("baseline_"));
        assert!(!merged.contains("speedup"));
    }

    #[test]
    fn fleet_bench_runs_tiny_shards() {
        let outcome = run_fleet_bench(15, 1.0, ProtocolKind::Greedy, 2);
        assert_eq!(outcome.run.shards, 2);
        assert_eq!(outcome.run.per_core_events_per_sec.len(), 2);
        assert!(outcome.run.total_events > 0);
        assert!(outcome.run.aggregate_events_per_sec > 0.0);
        assert_eq!(outcome.scenario, "megacity-15");
        // Different seeds per shard: the shards are genuinely independent
        // replications, not one simulation measured twice.
        assert!(outcome.run.mean_core_events_per_sec() > 0.0);
    }

    #[test]
    fn gate_passes_and_fails_on_the_committed_reference() {
        let gate = |committed: &str, measured: f64, floor: f64| {
            gate_events_per_sec(committed, "megacity-10", "Greedy", measured, floor)
        };
        let committed = render_bench_json(None, "current", &outcome(1_000.0));
        // 10% drop: within the 25% gate.
        let ratio = gate(&committed, 900.0, 0.75).unwrap();
        assert!((ratio - 0.9).abs() < 1e-9);
        // 30% drop: gated.
        let err = gate(&committed, 700.0, 0.75).unwrap_err();
        assert!(err.contains("regressed"), "unexpected message: {err}");
        // Faster than committed is of course fine.
        assert!(gate(&committed, 2_000.0, 0.75).is_ok());
        // Baseline-only files gate against the baseline label.
        let baseline_only = render_bench_json(None, "baseline", &outcome(1_000.0));
        assert!(gate(&baseline_only, 800.0, 0.75).is_ok());
        // A file with no measurement cannot gate.
        assert!(gate("{}", 800.0, 0.75).is_err());
        // Fleet files gate against the mean per-core rate, so a fleet run
        // can gate against its own committed file.
        let fleet = render_fleet_bench_json(None, "current", &fleet_outcome(2, 1_000.0));
        let ratio = gate(&fleet, 900.0, 0.75).unwrap();
        assert!((ratio - 0.9).abs() < 1e-9);
        assert!(gate(&fleet, 700.0, 0.75).is_err());
        let fleet_baseline = render_fleet_bench_json(None, "baseline", &fleet_outcome(2, 1_000.0));
        assert!(gate(&fleet_baseline, 800.0, 0.75).is_ok());
        // Mismatched workloads refuse to gate at all, in either direction.
        let err = gate_events_per_sec(&committed, "megacity-99", "Greedy", 9e9, 0.75).unwrap_err();
        assert!(err.contains("not comparable"), "unexpected message: {err}");
        assert!(gate_events_per_sec(&committed, "megacity-10", "AODV", 9e9, 0.75).is_err());
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
