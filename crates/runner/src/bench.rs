//! Hot-path throughput benchmark (`vanet-campaign --bench`).
//!
//! Runs one megacity-scale simulation, measures scheduler throughput
//! (events/sec) and peak RSS, and merges the result into a small flat JSON
//! file (`BENCH_hotpath.json` by default). The file holds two labelled
//! measurements — `baseline` (committed before a perf change) and `current`
//! (the state under test) — plus their speedup, giving every PR a recorded
//! perf trajectory.

use std::time::Instant;
use vanet_core::{ProtocolKind, Report, Scenario, Simulation};
use vanet_sim::SimDuration;

/// One labelled throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Scheduler events processed.
    pub events: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Peak resident set size of the process, bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
}

/// The outcome of one `--bench` invocation.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Scenario name (e.g. `megacity-10000`).
    pub scenario: String,
    /// Protocol the fleet ran.
    pub protocol: ProtocolKind,
    /// Simulated duration of the run, seconds.
    pub duration_s: f64,
    /// The measurement.
    pub run: BenchRun,
    /// The simulation report (for eyeballing that the run did real work).
    pub report: Report,
}

/// Peak resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Runs the hot-path benchmark: `vehicles` on the megacity grid for
/// `duration_s` simulated seconds under `protocol`, single-threaded (the
/// point is per-core event throughput, not pool scaling).
#[must_use]
pub fn run_hotpath_bench(vehicles: usize, duration_s: f64, protocol: ProtocolKind) -> BenchOutcome {
    let scenario = Scenario::megacity(vehicles).with_duration(SimDuration::from_secs(duration_s));
    let scenario_name = scenario.name.clone();
    let mut sim = Simulation::new(scenario, protocol);
    let started = Instant::now();
    let report = sim.run();
    let wall_s = started.elapsed().as_secs_f64();
    let events = sim.processed_events();
    BenchOutcome {
        scenario: scenario_name,
        protocol,
        duration_s,
        run: BenchRun {
            events,
            wall_s,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
            peak_rss_bytes: peak_rss_bytes(),
        },
        report,
    }
}

/// Extracts the numeric value of `"key":<number>` from flat JSON. Tolerant of
/// whitespace; returns `None` when the key is absent.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the value of `"key": "string"` from flat JSON.
fn json_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

fn parse_run(text: &str, label: &str) -> Option<BenchRun> {
    Some(BenchRun {
        events: json_number(text, &format!("{label}_events"))? as u64,
        wall_s: json_number(text, &format!("{label}_wall_s"))?,
        events_per_sec: json_number(text, &format!("{label}_events_per_sec"))?,
        peak_rss_bytes: json_number(text, &format!("{label}_peak_rss_bytes"))? as u64,
    })
}

fn render_run(out: &mut String, label: &str, run: &BenchRun) {
    out.push_str(&format!(
        "  \"{label}_events\": {},\n  \"{label}_wall_s\": {:.3},\n  \
         \"{label}_events_per_sec\": {:.0},\n  \"{label}_peak_rss_bytes\": {},\n",
        run.events, run.wall_s, run.events_per_sec, run.peak_rss_bytes
    ));
}

/// Renders the bench file contents: `outcome` stored under `label`
/// (`"baseline"` or `"current"`), preserving the *other* label from
/// `existing` (the previous file contents, if any). When both measurements
/// are present a `speedup` field (current / baseline events/sec) is added.
///
/// Two measurements are only comparable when they ran the same workload:
/// the other label is preserved **only if** the existing file's scenario,
/// protocol and simulated duration match this outcome's. On mismatch the
/// file is rewritten with the new measurement alone, so a speedup never
/// silently compares different workloads. (Hardware comparability remains
/// the operator's responsibility — measure baseline and current on the same
/// machine.)
#[must_use]
pub fn render_bench_json(existing: Option<&str>, label: &str, outcome: &BenchOutcome) -> String {
    let other_label = if label == "baseline" {
        "current"
    } else {
        "baseline"
    };
    let other = match existing {
        Some(text)
            if json_string(text, "scenario").as_deref() == Some(outcome.scenario.as_str())
                && json_string(text, "protocol").as_deref() == Some(outcome.protocol.name())
                && json_number(text, "duration_s") == Some(outcome.duration_s) =>
        {
            parse_run(text, other_label)
        }
        _ => None,
    };

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", outcome.scenario));
    out.push_str(&format!("  \"protocol\": \"{}\",\n", outcome.protocol));
    out.push_str(&format!("  \"duration_s\": {},\n", outcome.duration_s));
    let (baseline, current) = if label == "baseline" {
        (Some(&outcome.run), other.as_ref())
    } else {
        (other.as_ref(), Some(&outcome.run))
    };
    if let Some(b) = baseline {
        render_run(&mut out, "baseline", b);
    }
    if let Some(c) = current {
        render_run(&mut out, "current", c);
    }
    if let (Some(b), Some(c)) = (baseline, current) {
        if b.events_per_sec > 0.0 {
            out.push_str(&format!(
                "  \"speedup\": {:.2},\n",
                c.events_per_sec / b.events_per_sec
            ));
        }
    }
    // Trim the trailing comma of the last field.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(eps: f64) -> BenchOutcome {
        BenchOutcome {
            scenario: "megacity-10".to_owned(),
            protocol: ProtocolKind::Greedy,
            duration_s: 20.0,
            run: BenchRun {
                events: 1_000,
                wall_s: 1_000.0 / eps,
                events_per_sec: eps,
                peak_rss_bytes: 42 * 1024,
            },
            report: vanet_core::Metrics::new().report("Greedy", "megacity-10"),
        }
    }

    #[test]
    fn render_then_merge_round_trips_and_computes_speedup() {
        let baseline = render_bench_json(None, "baseline", &outcome(1_000.0));
        assert!(baseline.contains("\"baseline_events_per_sec\": 1000"));
        assert!(!baseline.contains("speedup"));
        let merged = render_bench_json(Some(&baseline), "current", &outcome(2_500.0));
        assert!(merged.contains("\"baseline_events_per_sec\": 1000"));
        assert!(merged.contains("\"current_events_per_sec\": 2500"));
        assert!(merged.contains("\"speedup\": 2.50"));
        let run = parse_run(&merged, "current").unwrap();
        assert_eq!(run.events, 1_000);
        assert_eq!(run.peak_rss_bytes, 42 * 1024);
    }

    #[test]
    fn incomparable_workloads_are_not_merged() {
        let baseline = render_bench_json(None, "baseline", &outcome(1_000.0));
        // Same scenario/protocol but a different simulated duration: the
        // baseline must be discarded instead of producing a bogus speedup.
        let mut shorter = outcome(2_500.0);
        shorter.duration_s = 5.0;
        let merged = render_bench_json(Some(&baseline), "current", &shorter);
        assert!(!merged.contains("baseline_events_per_sec"));
        assert!(!merged.contains("speedup"));
        // Different scenario: likewise discarded.
        let mut other = outcome(2_500.0);
        other.scenario = "megacity-99".to_owned();
        let merged = render_bench_json(Some(&baseline), "current", &other);
        assert!(!merged.contains("speedup"));
        // Identical workload still merges.
        let merged = render_bench_json(Some(&baseline), "current", &outcome(2_500.0));
        assert!(merged.contains("\"speedup\": 2.50"));
    }

    #[test]
    fn bench_runs_a_tiny_megacity() {
        let outcome = run_hotpath_bench(20, 2.0, ProtocolKind::Greedy);
        assert!(outcome.run.events > 0);
        assert!(outcome.run.events_per_sec > 0.0);
        assert_eq!(outcome.scenario, "megacity-20");
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
