//! # vanet-runner — the parallel experiment-campaign engine
//!
//! The paper's contribution is an evaluation *matrix*: protocol families
//! compared across scenarios, densities and seeds. This crate turns that
//! matrix into a first-class object:
//!
//! * [`CampaignSpec`] declares a (scenario grid × protocols × replications)
//!   campaign and expands it into independent, pre-seeded [`Job`]s;
//! * [`Runner`] executes the jobs on a work-stealing `std::thread` pool sized
//!   to the available cores, streaming progress to stderr;
//! * every (scenario × protocol) cell is reduced to a [`Summary`] carrying
//!   mean, std-dev, min/max and 95% confidence intervals per metric —
//!   replacing the lossy mean-only reduction of `average_reports`;
//! * results export as fixed-width tables, CSV and JSONL
//!   ([`render_table`], [`render_csv`], [`render_jsonl`]) and parse back
//!   losslessly ([`parse_csv`], [`parse_jsonl`]);
//! * [`catalog`] names the standard campaigns, and the `vanet-campaign`
//!   binary runs named or parameterised campaigns from the command line.
//!
//! **Determinism contract:** a job's result depends only on its pre-assigned
//! seed, and cells are reduced in spec order, so campaign results are
//! byte-identical whether they ran on 1 worker or 64.
//!
//! # Example
//!
//! ```
//! use vanet_runner::{CampaignSpec, Runner};
//! use vanet_core::{ProtocolKind, Scenario};
//! use vanet_sim::SimDuration;
//!
//! let spec = CampaignSpec::new("doc")
//!     .scenario("hw", Scenario::highway(10).with_duration(SimDuration::from_secs(5.0)))
//!     .protocols([ProtocolKind::Flooding])
//!     .replications(2);
//! let results = Runner::new().run(&spec);
//! assert_eq!(results.cells.len(), 1);
//! assert_eq!(results.cells[0].summary.replications, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod campaign;
pub mod catalog;
pub mod engine;
pub mod export;
pub mod scenario_spec;
pub mod summary;

pub use bench::{
    gate_events_per_sec, peak_rss_bytes, render_bench_json, render_fleet_bench_json,
    run_fleet_bench, run_hotpath_bench, BenchOutcome, BenchRun, FleetBenchOutcome, FleetRun,
};
pub use campaign::{protocol_by_name, CampaignSpec, Job};
pub use catalog::{campaign_by_name, parse_scenario, CATALOG};
pub use engine::{CampaignResults, CellSummary, Runner};
pub use export::{
    parse_csv, parse_jsonl, render_csv, render_jsonl, render_table, ExportError, ParsedCampaign,
};
pub use summary::{t_critical_95, Summary, SummaryStat, METRIC_NAMES};
