//! # vanet-runner — the parallel experiment-campaign engine
//!
//! The paper's contribution is an evaluation *matrix*: protocol families
//! compared across scenarios, densities and seeds. This crate turns that
//! matrix into a first-class object:
//!
//! * [`CampaignPlan`] (from `vanet-core`, re-exported here) declares a
//!   campaign as explicit per-cell (label, scenario, protocol,
//!   [`ReplicationPolicy`]) bindings — mixed comparisons are one plan — with
//!   [`CampaignPlan::cross_product`] covering the uniform sweeps the legacy
//!   [`CampaignSpec`] described;
//! * [`Runner`] executes plans on a work-stealing `std::thread` pool sized
//!   to the available cores, streaming progress to stderr; with
//!   [`Runner::with_journal`] every completed job is persisted to a
//!   content-hash-keyed [`Journal`], so interrupted campaigns resume
//!   executing only the missing jobs and edited plans re-run only changed
//!   cells;
//! * [`ReplicationPolicy::ConfidenceWidth`] keeps adding seeds to a cell
//!   until the 95% CI of a chosen metric is narrow enough, while
//!   [`ReplicationPolicy::Fixed`] stays byte-identical to the legacy path;
//! * every cell is reduced to a [`Summary`] carrying mean, std-dev, min/max
//!   and 95% confidence intervals per metric;
//! * results export as fixed-width tables, CSV and JSONL
//!   ([`render_table`], [`render_csv`], [`render_jsonl`]) and parse back
//!   losslessly ([`parse_csv`], [`parse_jsonl`]);
//! * [`catalog`] names the standard campaigns, and the `vanet-campaign`
//!   binary runs named or parameterised campaigns from the command line
//!   (`--resume DIR` for journals, `--ci-target` for adaptive replication).
//!
//! **Determinism contract:** a job's result depends only on its pre-assigned
//! seed, cells are reduced in plan order, and adaptive stopping decisions
//! depend only on the (deterministic) reports — so campaign results are
//! byte-identical whether they ran on 1 worker or 64, cold or resumed.
//!
//! # Example
//!
//! ```
//! use vanet_runner::{CampaignPlan, Runner};
//! use vanet_core::{ProtocolKind, Scenario};
//! use vanet_sim::SimDuration;
//!
//! let plan = CampaignPlan::new("doc")
//!     .cell(
//!         "hw-flooding",
//!         Scenario::highway(10).with_duration(SimDuration::from_secs(5.0)),
//!         ProtocolKind::Flooding,
//!     )
//!     .cell(
//!         "hw-greedy",
//!         Scenario::highway(10).with_duration(SimDuration::from_secs(5.0)),
//!         ProtocolKind::Greedy,
//!     );
//! let results = Runner::new().run_plan(&plan);
//! assert_eq!(results.cells.len(), 2);
//! assert_eq!(results.executed_jobs, 2);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod bench;
pub mod campaign;
pub mod catalog;
pub mod engine;
pub mod export;
pub mod journal;
pub mod manifest;
pub mod scenario_spec;
pub mod summary;
pub mod telemetry;

pub use analysis::{metric_value, run_analyze, welch_t_test, AnalyzeReport, WelchResult};
pub use bench::{
    gate_events_per_sec, peak_rss_bytes, render_bench_json, render_fleet_bench_json,
    run_fleet_bench, run_hotpath_bench, run_hotpath_bench_tapped, BenchOutcome, BenchRun,
    FleetBenchOutcome, FleetRun,
};
pub use campaign::{protocol_by_name, CampaignSpec, Job};
pub use catalog::{campaign_by_name, parse_scenario, CATALOG};
pub use engine::{CampaignResults, CellSummary, QuarantinedJob, Runner, TelemetrySettings};
pub use export::{
    parse_csv, parse_jsonl, render_csv, render_jsonl, render_table, ExportError, ParsedCampaign,
};
pub use journal::{Journal, JournalEntry, QuarantineEntry, JOURNAL_FILE};
pub use manifest::{ManifestEntry, MANIFEST_FILE};
pub use scenario_spec::ScenarioParseError;
pub use summary::{t_critical_95, Summary, SummaryStat, METRIC_NAMES};
pub use telemetry::{TelemetryEntry, TelemetryLog, TELEMETRY_FILE};
// The plan types live in vanet-core (so the experiment harness shares the
// same conventions) but are part of this crate's primary API.
pub use vanet_core::{CampaignPlan, PlanCell, PlanJob, ReplicationPolicy};
