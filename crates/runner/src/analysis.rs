//! `vanet-campaign analyze` — verdicts from campaign artifacts.
//!
//! A campaign directory accumulates three kinds of evidence: per-seed
//! reports in `journal.jsonl`, windowed telemetry in `telemetry.jsonl`, and
//! committed `BENCH_*.json` perf trajectories. This module reads them back
//! and turns them into conclusions instead of raw numbers:
//!
//! * **significance** (`--journal DIR`): groups the journal's per-seed
//!   reports by cell label and runs pairwise Welch's t-tests on a chosen
//!   metric, reusing the same Student-t machinery as the CI columns in
//!   campaign summaries — the output says which protocol differences are
//!   statistically real at 95% and which are noise;
//! * **time series** (`--timeseries DIR`): projects `telemetry.jsonl` into
//!   the workspace's CSV conventions, one row per (job, window), so the
//!   *when* of a delivery-ratio collapse is plottable; `--regions DIR`
//!   exports the spatial aggregates the same way;
//! * **bench trend** (`--bench-trend FILE...`): generalises the
//!   `--bench-gate` check from "one fresh measurement vs one file" to a
//!   committed trajectory — each file's baseline→current ratio is checked
//!   against `--gate-ratio`, and across files the current rates are chained
//!   into a trajectory verdict.
//!
//! Everything here is read-only over artifacts the runner already writes;
//! the analysis can run long after the campaign, on another machine.

use crate::bench::{json_number, json_number_array, json_string};
use crate::journal::{self, JOURNAL_FILE};
use crate::summary::{t_critical_95, SummaryStat, METRIC_NAMES};
use crate::telemetry::{self, TELEMETRY_FILE};
use std::path::Path;
use vanet_core::Report;

/// The outcome of an `analyze` invocation: the rendered report plus how
/// many checks failed (bench regressions), so the CLI can exit non-zero.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeReport {
    /// Human-readable analysis, table/CSV conventions matching the rest of
    /// the workspace.
    pub text: String,
    /// Number of failed checks (0 = clean).
    pub regressions: usize,
}

/// Reads one of [`METRIC_NAMES`] off a single report.
#[must_use]
pub fn metric_value(report: &Report, name: &str) -> Option<f64> {
    Some(match name {
        "data_sent" => report.data_sent as f64,
        "data_delivered" => report.data_delivered as f64,
        "duplicate_deliveries" => report.duplicate_deliveries as f64,
        "delivery_ratio" => report.delivery_ratio,
        "avg_delay_s" => report.avg_delay_s,
        "max_delay_s" => report.max_delay_s,
        "avg_hops" => report.avg_hops,
        "control_packets" => report.control_packets as f64,
        "control_bytes" => report.control_bytes as f64,
        "data_transmissions" => report.data_transmissions as f64,
        "control_per_delivered" => report.control_per_delivered,
        "transmissions_per_delivered" => report.transmissions_per_delivered,
        "route_errors" => report.route_errors as f64,
        "drops" => report.drops as f64,
        "avg_neighbors" => report.avg_neighbors,
        "bundles_stored" => report.bundles_stored as f64,
        "bundles_forwarded" => report.bundles_forwarded as f64,
        "bundles_expired" => report.bundles_expired as f64,
        "bundles_evicted" => report.bundles_evicted as f64,
        "custody_transfers" => report.custody_transfers as f64,
        "buffer_peak" => report.buffer_peak as f64,
        _ => return None,
    })
}

/// The result of one Welch's t-test between two samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic (positive when the first sample's mean is larger).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Whether |t| exceeds the two-sided 95% critical value at `df`.
    pub significant: bool,
}

/// Welch's unequal-variance t-test between two samples, using the same
/// Student-t table as the campaign CI columns. Returns `None` when either
/// sample has fewer than two values (no variance estimate) or when both
/// variances are zero with equal means (no test to run).
#[must_use]
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<WelchResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var =
        |v: &[f64], m: f64| v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma), var(b, mb));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        // Identical constants on both sides: a zero difference is trivially
        // not significant; a non-zero one is an exact separation.
        let separated = ma != mb;
        return Some(WelchResult {
            t: if separated { f64::INFINITY } else { 0.0 },
            df: (na + nb) - 2.0,
            significant: separated,
        });
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / (va * va / (na * na * (na - 1.0)) + vb * vb / (nb * nb * (nb - 1.0)));
    let critical = t_critical_95((df.floor() as usize).max(1));
    Some(WelchResult {
        t,
        df,
        significant: t.abs() > critical,
    })
}

/// One journal group: a cell label with its per-seed metric values, in
/// ascending seed order.
#[derive(Debug, Clone, PartialEq)]
struct Group {
    label: String,
    values: Vec<f64>,
}

/// Collects the journal's live quarantine entries with the same last-wins
/// semantics as `Journal::open`: a report line for a key heals (removes) any
/// quarantine for it, and a re-quarantine replaces the earlier record.
fn load_quarantines(text: &str) -> Vec<journal::QuarantineEntry> {
    let mut reported: Vec<u64> = Vec::new();
    let mut quarantines: Vec<journal::QuarantineEntry> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(entry) = journal::parse_entry(line) {
            quarantines.retain(|q| q.key != entry.key);
            reported.push(entry.key);
        } else if let Ok(q) = journal::parse_quarantine(line) {
            if !reported.contains(&q.key) {
                quarantines.retain(|e| e.key != q.key);
                quarantines.push(q);
            }
        }
    }
    quarantines
}

fn load_journal_groups(text: &str, metric: &str) -> Result<Vec<Group>, String> {
    // Group by label, keeping (seed, value) so replicate order is the
    // label's seed order — deterministic regardless of journal line order.
    // Legacy cross-product specs label cells by scenario only, so the same
    // label may cover several protocols — group by (label, protocol) and
    // disambiguate display names only where labels actually collide.
    struct Raw {
        label: String,
        protocol: String,
        seeded: Vec<(u64, f64)>,
    }
    let mut groups: Vec<Raw> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(entry) = journal::parse_entry(line) else {
            continue; // interrupted write — same tolerance as resume
        };
        let value = metric_value(&entry.report, metric)
            .ok_or_else(|| format!("unknown metric {metric:?} (see METRIC_NAMES)"))?;
        let protocol = entry.report.protocol.clone();
        match groups
            .iter_mut()
            .find(|g| g.label == entry.label && g.protocol == protocol)
        {
            Some(group) => group.seeded.push((entry.seed, value)),
            None => groups.push(Raw {
                label: entry.label,
                protocol,
                seeded: vec![(entry.seed, value)],
            }),
        }
    }
    Ok(groups
        .iter()
        .map(|group| {
            let collides = groups
                .iter()
                .any(|g| g.label == group.label && g.protocol != group.protocol);
            let mut seeded = group.seeded.clone();
            seeded.sort_by_key(|&(seed, _)| seed);
            Group {
                label: if collides {
                    format!("{}/{}", group.label, group.protocol)
                } else {
                    group.label.clone()
                },
                values: seeded.into_iter().map(|(_, v)| v).collect(),
            }
        })
        .collect())
}

fn significance_report(dir: &Path, metric: &str) -> Result<String, String> {
    let path = dir.join(JOURNAL_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let quarantines = load_quarantines(&text);
    let groups = load_journal_groups(&text, metric)?;
    if groups.is_empty() && quarantines.is_empty() {
        return Err(format!("{} holds no parseable entries", path.display()));
    }
    let mut out = format!(
        "significance: metric {metric}, {} group(s) from {}\n",
        groups.len(),
        path.display()
    );
    out.push_str(&format!(
        "{:<20} {:>3} {:>12} {:>12} {:>12}\n",
        "label", "n", "mean", "std", "ci95"
    ));
    for group in &groups {
        let stat = SummaryStat::from_values(&group.values).expect("group is non-empty");
        out.push_str(&format!(
            "{:<20} {:>3} {:>12.6} {:>12.6} {:>12.6}\n",
            group.label,
            group.values.len(),
            stat.mean,
            stat.std_dev,
            stat.ci95
        ));
    }
    for i in 0..groups.len() {
        for j in i + 1..groups.len() {
            let (a, b) = (&groups[i], &groups[j]);
            let line = match welch_t_test(&a.values, &b.values) {
                None => format!(
                    "{} vs {}: not enough replications for a test (need >= 2 each)\n",
                    a.label, b.label
                ),
                Some(result) => {
                    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
                    format!(
                        "{} vs {}: d_mean={:.6}, t={:.3}, df={:.1} -> {}\n",
                        a.label,
                        b.label,
                        mean(&a.values) - mean(&b.values),
                        result.t,
                        result.df,
                        if result.significant {
                            "SIGNIFICANT at 95%"
                        } else {
                            "not significant at 95%"
                        }
                    )
                }
            };
            out.push_str(&line);
        }
    }
    if !quarantines.is_empty() {
        out.push_str(&format!(
            "quarantined: {} job(s) never produced a report\n",
            quarantines.len()
        ));
        for q in &quarantines {
            out.push_str(&format!(
                "  {} (seed {}): {} attempt(s), last error: {}\n",
                q.label, q.seed, q.attempts, q.error
            ));
        }
    }
    Ok(out)
}

fn timeseries_csv(dir: &Path) -> Result<String, String> {
    let path = dir.join(TELEMETRY_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let mut entries = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(entry) = telemetry::parse_entry(line) {
            entries.push(entry);
        }
    }
    if entries.is_empty() {
        return Err(format!("{} holds no parseable entries", path.display()));
    }
    let names = entries[0].window_col_names();
    let mut out = format!("key,label,seed,window,t_s,{}\n", names.join(","));
    for entry in &entries {
        if entry.window_col_names() != names {
            return Err(format!(
                "telemetry entries disagree on columns (key {:016x})",
                entry.key
            ));
        }
        for window in 0..entry.window_count() {
            let mut row = format!(
                "{:016x},{},{},{},{}",
                entry.key,
                entry.label,
                entry.seed,
                window,
                window as f64 * entry.window_s
            );
            for name in &names {
                let col = entry.col(name).expect("column names came from this entry");
                row.push(',');
                row.push_str(&col[window].to_string());
            }
            out.push_str(&row);
            out.push('\n');
        }
    }
    Ok(out)
}

fn regions_csv(dir: &Path) -> Result<String, String> {
    let path = dir.join(TELEMETRY_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let mut out = "key,label,seed,region,rx,ry,sent,received,drops\n".to_owned();
    let mut any = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(entry) = telemetry::parse_entry(line) else {
            continue;
        };
        let (sent, received, drops) = match (
            entry.col("region_sent"),
            entry.col("region_received"),
            entry.col("region_drops"),
        ) {
            (Some(s), Some(r), Some(d)) => (s, r, d),
            _ => continue,
        };
        let per_axis = entry.regions_per_axis.max(1);
        for region in 0..sent.len() {
            any = true;
            out.push_str(&format!(
                "{:016x},{},{},{},{},{},{},{},{}\n",
                entry.key,
                entry.label,
                entry.seed,
                region,
                region % per_axis,
                region / per_axis,
                sent[region],
                received[region],
                drops[region],
            ));
        }
    }
    if !any {
        return Err(format!("{} holds no parseable entries", path.display()));
    }
    Ok(out)
}

/// One bench file's trajectory reading.
fn bench_rates(text: &str) -> (Option<f64>, Option<f64>) {
    let mean = |label: &str| -> Option<f64> {
        let per_core = json_number_array(text, &format!("{label}_per_core_events_per_sec"))?;
        if per_core.is_empty() {
            None
        } else {
            Some(per_core.iter().sum::<f64>() / per_core.len() as f64)
        }
    };
    let baseline = json_number(text, "baseline_events_per_sec").or_else(|| mean("baseline"));
    let current = json_number(text, "current_events_per_sec").or_else(|| mean("current"));
    (baseline, current)
}

/// One bench file's peak-RSS reading (`baseline_peak_rss_bytes`,
/// `current_peak_rss_bytes`).
fn bench_rss(text: &str) -> (Option<f64>, Option<f64>) {
    (
        json_number(text, "baseline_peak_rss_bytes"),
        json_number(text, "current_peak_rss_bytes"),
    )
}

fn bench_trend_report(
    files: &[String],
    gate_ratio: f64,
    rss_gate_ratio: f64,
) -> Result<(String, usize), String> {
    let mut out = format!(
        "bench trend: {} file(s), gate ratio {gate_ratio:.2}, rss gate ratio {rss_gate_ratio:.2}\n",
        files.len()
    );
    let mut regressions = 0;
    let mut trajectory: Vec<(String, String, f64)> = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|error| format!("cannot read {file}: {error}"))?;
        let workload = format!(
            "{}/{}",
            json_string(&text, "scenario").unwrap_or_else(|| "?".to_owned()),
            json_string(&text, "protocol").unwrap_or_else(|| "?".to_owned()),
        );
        let (baseline, current) = bench_rates(&text);
        let line = match (baseline, current) {
            (Some(b), Some(c)) if b > 0.0 => {
                let ratio = c / b;
                let verdict = if ratio < gate_ratio {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "OK"
                };
                format!(
                    "{file} [{workload}]: baseline {b:.0} ev/s, current {c:.0} ev/s, \
                     ratio {ratio:.2} -> {verdict}\n"
                )
            }
            (None, Some(c)) | (Some(c), None) => {
                format!("{file} [{workload}]: single measurement {c:.0} ev/s, no trend\n")
            }
            _ => {
                return Err(format!(
                    "{file} holds no events/sec measurement (malformed or not a BENCH_*.json \
                     written by --bench/--bench-fleet?)"
                ))
            }
        };
        out.push_str(&line);
        // Throughput wins that come from trading away memory are not wins at
        // megacity scale: peak RSS is gated alongside events/sec, in the
        // opposite direction (a *rise* past the ratio regresses).
        if let (Some(rb), Some(rc)) = bench_rss(&text) {
            if rb > 0.0 {
                let ratio = rc / rb;
                let verdict = if ratio > rss_gate_ratio {
                    regressions += 1;
                    "RSS-REGRESSED"
                } else {
                    "OK"
                };
                out.push_str(&format!(
                    "{file} [{workload}]: peak RSS baseline {:.1} MiB, current {:.1} MiB, \
                     ratio {ratio:.2} -> {verdict}\n",
                    rb / (1024.0 * 1024.0),
                    rc / (1024.0 * 1024.0),
                ));
            }
        }
        if let Some(c) = current.or(baseline) {
            trajectory.push((file.clone(), workload, c));
        }
    }
    // Chain current rates across files into a trajectory verdict — but only
    // within a workload: events/sec at megacity-10k and megacity-1M are
    // different units, and chaining them would flag the scale-up itself as
    // a regression.
    let mut seen: Vec<&str> = Vec::new();
    for (_, workload, _) in &trajectory {
        if seen.contains(&workload.as_str()) {
            continue;
        }
        seen.push(workload);
        let same: Vec<&(String, String, f64)> = trajectory
            .iter()
            .filter(|(_, w, _)| w == workload)
            .collect();
        if same.len() < 2 {
            continue;
        }
        let (first_file, _, first) = same[0];
        let (last_file, _, last) = same[same.len() - 1];
        if *first > 0.0 {
            let ratio = last / first;
            let verdict = if ratio < gate_ratio {
                regressions += 1;
                "REGRESSED"
            } else {
                "OK"
            };
            out.push_str(&format!(
                "trajectory [{workload}] {first_file} -> {last_file}: \
                 ratio {ratio:.2} -> {verdict}\n"
            ));
        }
    }
    Ok((out, regressions))
}

const USAGE: &str = "\
vanet-campaign analyze — verdicts from campaign artifacts

  analyze --journal DIR [--metric NAME]   pairwise Welch significance tests
                                          over the journal's per-seed reports
                                          (default metric: delivery_ratio)
  analyze --timeseries DIR                windowed telemetry as CSV
  analyze --regions DIR                   per-region telemetry as CSV
  analyze --bench-trend FILE [FILE...]    baseline->current regression check
          [--gate-ratio R]                per file and across files
                                          (default gate: 0.9)
          [--rss-gate-ratio R]            fail when current peak RSS exceeds
                                          baseline by more than R
                                          (default: 1.5)

Modes compose: each requested section is appended to the output.";

/// Runs the `analyze` subcommand over its argument list (everything after
/// the literal `analyze`). Returns the rendered report or a usage/IO error.
pub fn run_analyze(args: &[String]) -> Result<AnalyzeReport, String> {
    let mut journal_dir: Option<String> = None;
    let mut timeseries_dir: Option<String> = None;
    let mut regions_dir: Option<String> = None;
    let mut bench_files: Vec<String> = Vec::new();
    let mut metric = "delivery_ratio".to_owned();
    let mut gate_ratio = 0.9_f64;
    let mut rss_gate_ratio = 1.5_f64;

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--journal" => journal_dir = Some(value("--journal")?),
            "--timeseries" => timeseries_dir = Some(value("--timeseries")?),
            "--regions" => regions_dir = Some(value("--regions")?),
            "--metric" => metric = value("--metric")?,
            "--gate-ratio" => {
                let raw = value("--gate-ratio")?;
                gate_ratio = raw
                    .parse()
                    .map_err(|_| format!("--gate-ratio needs a number, got {raw:?}"))?;
            }
            "--rss-gate-ratio" => {
                let raw = value("--rss-gate-ratio")?;
                rss_gate_ratio = raw
                    .parse()
                    .map_err(|_| format!("--rss-gate-ratio needs a number, got {raw:?}"))?;
            }
            "--bench-trend" => {
                bench_files.push(value("--bench-trend")?);
                while let Some(next) = iter.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    bench_files.push(iter.next().cloned().expect("peeked"));
                }
            }
            "--help" | "-h" => {
                return Ok(AnalyzeReport {
                    text: USAGE.to_owned(),
                    regressions: 0,
                })
            }
            other => return Err(format!("unknown analyze flag {other:?}\n\n{USAGE}")),
        }
    }
    if !METRIC_NAMES.contains(&metric.as_str()) {
        return Err(format!("unknown metric {metric:?} (see METRIC_NAMES)"));
    }

    let mut sections: Vec<String> = Vec::new();
    let mut regressions = 0;
    if let Some(dir) = &journal_dir {
        sections.push(significance_report(Path::new(dir), &metric)?);
    }
    if let Some(dir) = &timeseries_dir {
        sections.push(timeseries_csv(Path::new(dir))?);
    }
    if let Some(dir) = &regions_dir {
        sections.push(regions_csv(Path::new(dir))?);
    }
    if !bench_files.is_empty() {
        let (text, failed) = bench_trend_report(&bench_files, gate_ratio, rss_gate_ratio)?;
        sections.push(text);
        regressions += failed;
    }
    if sections.is_empty() {
        return Err(format!("nothing to analyze\n\n{USAGE}"));
    }
    Ok(AnalyzeReport {
        text: sections.join("\n"),
        regressions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_separates_clearly_different_samples() {
        let a = [0.9, 0.92, 0.91, 0.89, 0.9];
        let b = [0.5, 0.52, 0.49, 0.51, 0.5];
        let result = welch_t_test(&a, &b).unwrap();
        assert!(result.significant, "clear separation must be significant");
        assert!(result.t > 0.0, "first mean is larger");

        let same = welch_t_test(&a, &a).unwrap();
        assert!(!same.significant, "a sample is never different from itself");
        assert!(same.t.abs() < 1e-9);
    }

    #[test]
    fn welch_handles_degenerate_samples() {
        assert_eq!(welch_t_test(&[1.0], &[2.0, 3.0]), None);
        let constant = welch_t_test(&[0.5, 0.5], &[0.5, 0.5]).unwrap();
        assert!(!constant.significant);
        let separated = welch_t_test(&[0.5, 0.5], &[0.7, 0.7]).unwrap();
        assert!(separated.significant);
        assert!(separated.t.is_infinite());
    }

    #[test]
    fn welch_respects_noise() {
        // Overlapping noisy samples with nearly equal means: no verdict.
        let a = [0.50, 0.70, 0.45, 0.65, 0.55];
        let b = [0.52, 0.68, 0.47, 0.63, 0.58];
        let result = welch_t_test(&a, &b).unwrap();
        assert!(!result.significant, "t={} df={}", result.t, result.df);
    }

    #[test]
    fn metric_values_cover_every_metric_name() {
        let report = vanet_core::Metrics::new().report("X", "y");
        for name in METRIC_NAMES {
            assert!(
                metric_value(&report, name).is_some(),
                "metric {name} unmapped"
            );
        }
        assert_eq!(metric_value(&report, "nope"), None);
    }

    #[test]
    fn unknown_flags_and_metrics_are_rejected() {
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|x| (*x).to_owned()).collect() };
        assert!(run_analyze(&argv(&["--frobnicate"])).is_err());
        assert!(run_analyze(&argv(&["--journal", "/nonexistent", "--metric", "nope"])).is_err());
        assert!(run_analyze(&argv(&[])).is_err());
        let help = run_analyze(&argv(&["--help"])).unwrap();
        assert!(help.text.contains("analyze"));
    }

    #[test]
    fn bench_trend_reads_hotpath_and_fleet_shapes() {
        let dir = std::env::temp_dir().join(format!("vanet-analysis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ok = dir.join("BENCH_ok.json");
        std::fs::write(
            &ok,
            "{\n  \"scenario\": \"megacity-10000\",\n  \"protocol\": \"Greedy\",\n  \
             \"duration_s\": 20,\n  \"baseline_events_per_sec\": 100000,\n  \
             \"current_events_per_sec\": 105000\n}\n",
        )
        .unwrap();
        let bad = dir.join("BENCH_bad.json");
        std::fs::write(
            &bad,
            "{\n  \"scenario\": \"megacity-10000\",\n  \"protocol\": \"Greedy\",\n  \
             \"duration_s\": 20,\n  \"baseline_events_per_sec\": 100000,\n  \
             \"current_events_per_sec\": 50000\n}\n",
        )
        .unwrap();
        let argv: Vec<String> = vec![
            "--bench-trend".to_owned(),
            ok.display().to_string(),
            bad.display().to_string(),
        ];
        let report = run_analyze(&argv).unwrap();
        assert!(report.text.contains("ratio 1.05 -> OK"));
        assert!(report.text.contains("ratio 0.50 -> REGRESSED"));
        assert!(
            report.text.contains("trajectory"),
            "two files chain into a trajectory: {}",
            report.text
        );
        // File regression + trajectory regression (105k -> 50k).
        assert_eq!(report.regressions, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_trend_missing_or_malformed_files_error_cleanly() {
        let missing = run_analyze(&[
            "--bench-trend".to_owned(),
            "/nonexistent/BENCH_gone.json".to_owned(),
        ]);
        let message = missing.unwrap_err();
        assert!(message.contains("cannot read"), "{message}");
        assert!(message.contains("BENCH_gone.json"), "{message}");

        let dir = std::env::temp_dir().join(format!("vanet-trend-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let garbage = dir.join("BENCH_garbage.json");
        std::fs::write(&garbage, "this is not json at all {{{").unwrap();
        let malformed = run_analyze(&["--bench-trend".to_owned(), garbage.display().to_string()]);
        let message = malformed.unwrap_err();
        assert!(
            message.contains("holds no events/sec measurement"),
            "{message}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_analysis_reports_quarantined_jobs() {
        use crate::journal::{render_entry, render_quarantine, JournalEntry, QuarantineEntry};
        let dir = std::env::temp_dir().join(format!("vanet-quarantine-sig-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = vanet_core::Metrics::new().report("FLOOD", "hw");
        let entry = |key: u64, seed: u64| JournalEntry {
            key,
            campaign: "c".to_owned(),
            label: "hw".to_owned(),
            seed,
            report: report.clone(),
        };
        let quarantine = |key: u64, seed: u64| QuarantineEntry {
            key,
            campaign: "c".to_owned(),
            label: "bad".to_owned(),
            seed,
            attempts: 2,
            backoff_s: vec![1.0],
            error: "poison fault fired".to_owned(),
        };
        let lines = [
            render_entry(&entry(1, 10)),
            render_entry(&entry(2, 11)),
            render_quarantine(&quarantine(3, 12)),
            // Healed: a later report supersedes this quarantine.
            render_quarantine(&quarantine(4, 13)),
            render_entry(&entry(4, 13)),
        ];
        std::fs::write(dir.join(JOURNAL_FILE), format!("{}\n", lines.join("\n"))).unwrap();
        let report = run_analyze(&["--journal".to_owned(), dir.display().to_string()]).unwrap();
        assert!(
            report.text.contains("quarantined: 1 job(s)"),
            "{}",
            report.text
        );
        assert!(report.text.contains("bad (seed 12): 2 attempt(s)"));
        assert!(report.text.contains("poison fault fired"));
        assert_eq!(report.regressions, 0, "quarantine is reported, not gated");

        // A journal holding only quarantines still renders (no groups).
        std::fs::write(
            dir.join(JOURNAL_FILE),
            format!("{}\n", render_quarantine(&quarantine(9, 1))),
        )
        .unwrap();
        let only = run_analyze(&["--journal".to_owned(), dir.display().to_string()]).unwrap();
        assert!(only.text.contains("0 group(s)"), "{}", only.text);
        assert!(only.text.contains("quarantined: 1 job(s)"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_trend_gates_peak_rss() {
        let dir = std::env::temp_dir().join(format!("vanet-rss-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Throughput improves, but peak RSS doubles: the default 1.5 RSS
        // gate must flag it even though the events/sec gate passes.
        let bloated = dir.join("BENCH_bloated.json");
        std::fs::write(
            &bloated,
            "{\n  \"scenario\": \"megacity-10000\",\n  \"protocol\": \"Greedy\",\n  \
             \"baseline_events_per_sec\": 100000,\n  \
             \"current_events_per_sec\": 120000,\n  \
             \"baseline_peak_rss_bytes\": 104857600,\n  \
             \"current_peak_rss_bytes\": 209715200\n}\n",
        )
        .unwrap();
        let argv = |extra: &[&str]| -> Vec<String> {
            let mut v = vec!["--bench-trend".to_owned(), bloated.display().to_string()];
            v.extend(extra.iter().map(|s| (*s).to_owned()));
            v
        };

        let report = run_analyze(&argv(&[])).unwrap();
        assert!(report.text.contains("ratio 1.20 -> OK"));
        assert!(
            report
                .text
                .contains("peak RSS baseline 100.0 MiB, current 200.0 MiB"),
            "RSS line missing: {}",
            report.text
        );
        assert!(report.text.contains("ratio 2.00 -> RSS-REGRESSED"));
        assert_eq!(report.regressions, 1);

        // A loose gate lets the same file through.
        let loose = run_analyze(&argv(&["--rss-gate-ratio", "2.5"])).unwrap();
        assert!(loose.text.contains("ratio 2.00 -> OK"));
        assert_eq!(loose.regressions, 0);

        // Files without RSS fields simply skip the RSS check.
        let bare = dir.join("BENCH_bare.json");
        std::fs::write(
            &bare,
            "{\n  \"scenario\": \"megacity-10000\",\n  \"protocol\": \"Greedy\",\n  \
             \"baseline_events_per_sec\": 100000,\n  \
             \"current_events_per_sec\": 100000\n}\n",
        )
        .unwrap();
        let none = run_analyze(&["--bench-trend".to_owned(), bare.display().to_string()]).unwrap();
        assert!(!none.text.contains("peak RSS"));
        assert_eq!(none.regressions, 0);

        // Malformed ratios are rejected up front.
        assert!(run_analyze(&argv(&["--rss-gate-ratio", "fast"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_trend_chains_only_matching_workloads() {
        let dir = std::env::temp_dir().join(format!("vanet-trend-mix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, scenario: &str, current: u64| {
            let path = dir.join(name);
            std::fs::write(
                &path,
                format!(
                    "{{\n  \"scenario\": \"{scenario}\",\n  \"protocol\": \"Greedy\",\n  \
                     \"baseline_events_per_sec\": {current},\n  \
                     \"current_events_per_sec\": {current}\n}}\n"
                ),
            )
            .unwrap();
            path.display().to_string()
        };
        // A 10k file followed by a 1M file: events/sec at different scales
        // are different units, so no trajectory line may chain them even
        // though the ratio (0.33) would trip the gate.
        let small = write("BENCH_small.json", "megacity-10000", 1_200_000);
        let big = write("BENCH_big.json", "megacity-1000000", 400_000);
        let mixed = run_analyze(&["--bench-trend".to_owned(), small.clone(), big.clone()]).unwrap();
        assert!(
            !mixed.text.contains("trajectory"),
            "mixed workloads must not chain: {}",
            mixed.text
        );
        assert_eq!(mixed.regressions, 0);

        // Two files of the same workload interleaved with the other scale
        // still chain (and here, regress).
        let small2 = write("BENCH_small2.json", "megacity-10000", 600_000);
        let argv = vec![
            "--bench-trend".to_owned(),
            small.clone(),
            big,
            small2.clone(),
        ];
        let chained = run_analyze(&argv).unwrap();
        assert!(
            chained.text.contains(&format!(
                "trajectory [megacity-10000/Greedy] {small} -> {small2}"
            )),
            "same-workload chain missing: {}",
            chained.text
        );
        assert!(chained.text.contains("ratio 0.50 -> REGRESSED"));
        assert_eq!(chained.regressions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
