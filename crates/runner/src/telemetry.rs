//! Persisted streaming telemetry: one compact columnar JSON line per job.
//!
//! When a campaign runs with the telemetry tap enabled, the
//! [`Runner`](crate::Runner) flushes each job's sealed
//! [`WindowedTap`](vanet_core::WindowedTap) as one line of
//! `telemetry.jsonl` next to the campaign journal. The format is columnar
//! — a `"cols"` object mapping column names to arrays with one element per
//! window (plus three `region_*` columns with one element per spatial
//! bucket) — so a line is self-describing and an analysis pass can project
//! any column without touching the rest.
//!
//! The file follows the journal's persistence contract exactly: keyed by
//! the job's stable content hash, append-only, one `write` per record,
//! floats in shortest-round-trip form, unparseable lines (an interrupted
//! final write) skipped and counted at open so the affected job simply
//! re-runs. [`TelemetryLog::contains`] is the resume check: a job is only a
//! cache hit when *both* its report and its telemetry line survived.

use crate::export::{json_escape, Json, JsonParser};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use vanet_core::{WindowedTap, DROP_REASON_NAMES};

/// Name of the telemetry log inside a journal directory.
pub const TELEMETRY_FILE: &str = "telemetry.jsonl";

/// One job's windowed telemetry as persisted in `telemetry.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEntry {
    /// The job's stable content key (`PlanJob::key`, matches the journal).
    pub key: u64,
    /// The campaign the job ran under (bookkeeping only).
    pub campaign: String,
    /// The cell label (bookkeeping only).
    pub label: String,
    /// The job's fully derived seed.
    pub seed: u64,
    /// Window width in seconds.
    pub window_s: f64,
    /// Spatial buckets per axis (the `region_*` columns have this² values).
    pub regions_per_axis: usize,
    /// Named columns in canonical order: per-window counters first, then
    /// the per-region aggregates. Counter columns hold exact integers (as
    /// `f64`, far below 2^53); `delay_sum_s` is a true float.
    pub cols: Vec<(String, Vec<f64>)>,
}

impl TelemetryEntry {
    /// Projects a sealed tap into the canonical column layout.
    #[must_use]
    pub fn from_tap(key: u64, campaign: &str, label: &str, seed: u64, tap: &WindowedTap) -> Self {
        let windows = tap.windows();
        let col = |f: &dyn Fn(usize) -> f64| -> Vec<f64> { (0..windows.len()).map(f).collect() };
        let mut cols: Vec<(String, Vec<f64>)> = vec![
            (
                "originations".to_owned(),
                col(&|i| windows[i].originations as f64),
            ),
            (
                "deliveries".to_owned(),
                col(&|i| windows[i].deliveries as f64),
            ),
            ("delay_sum_s".to_owned(), col(&|i| windows[i].delay_sum_s)),
            (
                "sent_data".to_owned(),
                col(&|i| windows[i].sent_data as f64),
            ),
            (
                "sent_control".to_owned(),
                col(&|i| windows[i].sent_control as f64),
            ),
            (
                "bytes_sent".to_owned(),
                col(&|i| windows[i].bytes_sent as f64),
            ),
            ("received".to_owned(), col(&|i| windows[i].received as f64)),
        ];
        for (d, name) in DROP_REASON_NAMES.iter().enumerate() {
            cols.push((format!("drop_{name}"), col(&|i| windows[i].drops[d] as f64)));
        }
        cols.push((
            "fault_drops".to_owned(),
            col(&|i| windows[i].fault_drops as f64),
        ));
        cols.push(("outages".to_owned(), col(&|i| windows[i].outages as f64)));
        cols.push((
            "neighbors_lost".to_owned(),
            col(&|i| windows[i].neighbors_lost as f64),
        ));
        cols.push((
            "neighbors_gained".to_owned(),
            col(&|i| windows[i].neighbors_gained as f64),
        ));
        cols.push((
            "medium_transmissions".to_owned(),
            col(&|i| windows[i].medium.transmissions.value() as f64),
        ));
        cols.push((
            "medium_deliveries".to_owned(),
            col(&|i| windows[i].medium.deliveries.value() as f64),
        ));
        cols.push((
            "medium_propagation_losses".to_owned(),
            col(&|i| windows[i].medium.propagation_losses.value() as f64),
        ));
        cols.push((
            "medium_collision_losses".to_owned(),
            col(&|i| windows[i].medium.collision_losses.value() as f64),
        ));
        cols.push((
            "medium_fault_losses".to_owned(),
            col(&|i| windows[i].medium.fault_losses.value() as f64),
        ));
        cols.push((
            "medium_bytes".to_owned(),
            col(&|i| windows[i].medium.bytes_transmitted.value() as f64),
        ));
        cols.push((
            "bundles_stored".to_owned(),
            col(&|i| windows[i].bundles_stored as f64),
        ));
        cols.push((
            "bundles_forwarded".to_owned(),
            col(&|i| windows[i].bundles_forwarded as f64),
        ));
        cols.push((
            "bundles_expired".to_owned(),
            col(&|i| windows[i].bundles_expired as f64),
        ));
        cols.push((
            "bundles_evicted".to_owned(),
            col(&|i| windows[i].bundles_evicted as f64),
        ));
        cols.push((
            "custody_transfers".to_owned(),
            col(&|i| windows[i].custody_transfers as f64),
        ));
        cols.push((
            "buffer_peak".to_owned(),
            col(&|i| windows[i].buffer_peak as f64),
        ));
        let regions = tap.regions();
        cols.push((
            "region_sent".to_owned(),
            regions.iter().map(|r| r.sent as f64).collect(),
        ));
        cols.push((
            "region_received".to_owned(),
            regions.iter().map(|r| r.received as f64).collect(),
        ));
        cols.push((
            "region_drops".to_owned(),
            regions.iter().map(|r| r.drops as f64).collect(),
        ));
        TelemetryEntry {
            key,
            campaign: campaign.to_owned(),
            label: label.to_owned(),
            seed,
            window_s: tap.window_secs(),
            regions_per_axis: tap.regions_per_axis(),
            cols,
        }
    }

    /// Number of windows the entry spans (length of the per-window columns).
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.cols.first().map_or(0, |(_, v)| v.len())
    }

    /// Looks a column up by name.
    #[must_use]
    pub fn col(&self, name: &str) -> Option<&[f64]> {
        self.cols
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// The per-window column names, in canonical order (excludes the
    /// `region_*` aggregates).
    #[must_use]
    pub fn window_col_names(&self) -> Vec<&str> {
        self.cols
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| !n.starts_with("region_"))
            .collect()
    }
}

fn render_numbers(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 4 + 2);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

/// Renders one telemetry line (no trailing newline). Floats use Rust's
/// shortest-round-trip `Display`, so parsing reproduces the exact bits.
#[must_use]
pub fn render_entry(entry: &TelemetryEntry) -> String {
    let cols: Vec<String> = entry
        .cols
        .iter()
        .map(|(name, values)| format!("\"{}\":{}", json_escape(name), render_numbers(values)))
        .collect();
    format!(
        "{{\"key\":\"{:016x}\",\"campaign\":\"{}\",\"label\":\"{}\",\"seed\":{},\
         \"window_s\":{},\"regions_per_axis\":{},\"cols\":{{{}}}}}",
        entry.key,
        json_escape(&entry.campaign),
        json_escape(&entry.label),
        entry.seed,
        entry.window_s,
        entry.regions_per_axis,
        cols.join(",")
    )
}

/// Parses one telemetry line (the inverse of [`render_entry`]). Malformed
/// lines yield a description; the log loader treats that as "interrupted
/// write, re-run the job".
pub fn parse_entry(line: &str) -> Result<TelemetryEntry, String> {
    let value = JsonParser::new(line).value()?;
    let text = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number field {key:?}"))
    };
    let key_hex = text("key")?;
    let key = u64::from_str_radix(&key_hex, 16).map_err(|_| format!("bad key {key_hex:?}"))?;
    let cols_value = value.get("cols").ok_or("missing cols object")?;
    let pairs = cols_value.entries().ok_or("cols is not an object")?;
    let mut cols = Vec::with_capacity(pairs.len());
    for (name, col) in pairs {
        let items = col
            .as_array()
            .ok_or_else(|| format!("column {name:?} is not an array"))?;
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(
                item.as_f64()
                    .ok_or_else(|| format!("column {name:?} holds a non-number"))?,
            );
        }
        cols.push((name.clone(), values));
    }
    Ok(TelemetryEntry {
        key,
        campaign: text("campaign")?,
        label: text("label")?,
        seed: num("seed")? as u64,
        window_s: num("window_s")?,
        regions_per_axis: num("regions_per_axis")? as usize,
        cols,
    })
}

/// An open telemetry log: entries loaded from disk (file order, last write
/// per key wins) plus an append handle for streaming new completions.
#[derive(Debug)]
pub struct TelemetryLog {
    path: PathBuf,
    entries: Vec<TelemetryEntry>,
    index: HashMap<u64, usize>,
    file: Mutex<File>,
    skipped_lines: usize,
}

impl TelemetryLog {
    /// Opens (creating if needed) the telemetry log in `dir`, loading every
    /// parseable line of an existing `telemetry.jsonl`. Unparseable lines
    /// are counted and skipped — the matching job re-runs, like a truncated
    /// journal line.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<TelemetryLog> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(TELEMETRY_FILE);
        let mut entries: Vec<TelemetryEntry> = Vec::new();
        let mut index = HashMap::new();
        let mut skipped_lines = 0;
        let mut needs_newline = false;
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_entry(line) {
                    Ok(entry) => match index.get(&entry.key) {
                        Some(&at) => entries[at] = entry,
                        None => {
                            index.insert(entry.key, entries.len());
                            entries.push(entry);
                        }
                    },
                    Err(_) => skipped_lines += 1,
                }
            }
            // Same interrupted-write repair as the journal: never glue a new
            // record onto a partial final line.
            needs_newline = !existing.is_empty() && !existing.ends_with('\n');
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if needs_newline {
            writeln!(file)?;
        }
        Ok(TelemetryLog {
            path,
            entries,
            index,
            file: Mutex::new(file),
            skipped_lines,
        })
    }

    /// The telemetry file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of entries loaded at open time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log loaded empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of unparseable lines skipped at open time.
    #[must_use]
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Whether a job's telemetry line survived (the resume check).
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Looks an entry up by its content key.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&TelemetryEntry> {
        self.index.get(&key).map(|&at| &self.entries[at])
    }

    /// Every loaded entry, in file order.
    #[must_use]
    pub fn entries(&self) -> &[TelemetryEntry] {
        &self.entries
    }

    /// Appends one entry and flushes — the line and its newline go down in
    /// a single `write` on an append-mode handle, mirroring the journal's
    /// crash- and shard-safety contract.
    pub fn record(&self, entry: &TelemetryEntry) -> std::io::Result<()> {
        let mut line = render_entry(entry);
        line.push('\n');
        let mut file = self.file.lock().expect("telemetry file lock poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use vanet_core::{MediumStats, Position, Telemetry, WindowedTap};
    use vanet_sim::{SimDuration, SimTime};

    fn sample_tap() -> WindowedTap {
        let mut tap = WindowedTap::new(SimDuration::from_secs(1.0), 2);
        tap.on_start(
            Position::new(0.0, 0.0),
            Position::new(100.0, 100.0),
            SimDuration::from_secs(2.0),
        );
        let medium = MediumStats::default();
        tap.on_event(SimTime::from_secs(0.25), &medium);
        tap.on_origination(SimTime::from_secs(0.25));
        tap.on_transmit(SimTime::from_secs(0.25), Position::new(5.0, 5.0), 64, false);
        // The simulation reports the event clock before each event's hooks,
        // which is what rolls the window forward.
        tap.on_event(SimTime::from_secs(1.5), &medium);
        tap.on_delivery(SimTime::from_secs(1.5), 0.012_345_678_9);
        tap.on_bundle(SimTime::from_secs(1.5), vanet_core::BundleOp::Stored, 2);
        tap.on_finish(SimTime::from_secs(2.0), &medium);
        tap
    }

    fn entry() -> TelemetryEntry {
        TelemetryEntry::from_tap(
            0xfeed_beef_1234_5678,
            "camp \"q\"",
            "hw,dense",
            42,
            &sample_tap(),
        )
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vanet-telemetry-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn entry_round_trips_exactly() {
        let e = entry();
        let parsed = parse_entry(&render_entry(&e)).expect("rendered entry parses");
        assert_eq!(parsed, e, "telemetry round-trip must be lossless");
    }

    #[test]
    fn from_tap_projects_the_canonical_columns() {
        let e = entry();
        assert_eq!(e.window_count(), 3);
        assert_eq!(e.col("originations"), Some(&[1.0, 0.0, 0.0][..]));
        assert_eq!(e.col("deliveries"), Some(&[0.0, 1.0, 0.0][..]));
        assert_eq!(e.col("region_sent").map(<[f64]>::len), Some(4));
        assert!(e.col("drop_no_route").is_some());
        assert_eq!(e.col("fault_drops"), Some(&[0.0, 0.0, 0.0][..]));
        assert_eq!(e.col("outages"), Some(&[0.0, 0.0, 0.0][..]));
        assert_eq!(e.col("medium_fault_losses"), Some(&[0.0, 0.0, 0.0][..]));
        assert_eq!(e.col("bundles_stored"), Some(&[0.0, 1.0, 0.0][..]));
        assert_eq!(e.col("buffer_peak"), Some(&[0.0, 2.0, 0.0][..]));
        assert_eq!(e.col("custody_transfers"), Some(&[0.0, 0.0, 0.0][..]));
        assert!(e
            .window_col_names()
            .iter()
            .all(|n| !n.starts_with("region_")));
    }

    #[test]
    fn malformed_lines_are_reported() {
        assert!(parse_entry("{oops").is_err());
        assert!(parse_entry("{\"key\":\"zz\"}").is_err());
        let truncated = &render_entry(&entry())[..60];
        assert!(parse_entry(truncated).is_err());
    }

    #[test]
    fn log_persists_and_recovers_like_the_journal() {
        let dir = temp_dir("basic");
        let log = TelemetryLog::open(&dir).unwrap();
        assert!(log.is_empty());
        log.record(&entry()).unwrap();
        let mut second = entry();
        second.key = 7;
        log.record(&second).unwrap();
        drop(log);

        let reopened = TelemetryLog::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.skipped_lines(), 0);
        assert!(reopened.contains(entry().key) && reopened.contains(7));
        assert_eq!(reopened.get(entry().key), Some(&entry()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_final_line_is_skipped_not_fatal() {
        let dir = temp_dir("interrupted");
        let log = TelemetryLog::open(&dir).unwrap();
        log.record(&entry()).unwrap();
        let path = log.path().to_path_buf();
        drop(log);
        let full = std::fs::read_to_string(&path).unwrap();
        let half = &full[..full.len() / 2];
        std::fs::write(&path, format!("{full}{half}")).unwrap();

        let reopened = TelemetryLog::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.skipped_lines(), 1);
        assert!(!reopened.path().to_string_lossy().is_empty());
        // Appending after the repair starts on a fresh line.
        reopened.record(&entry()).unwrap();
        drop(reopened);
        let again = TelemetryLog::open(&dir).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again.skipped_lines(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
