//! Campaign result exports: fixed-width tables, CSV and JSONL.
//!
//! CSV and JSONL are written *and* parsed here (the environment has no serde
//! runtime, so the JSON emitter/parser is a self-contained ~100-line
//! recursive-descent affair). Render → parse is lossless for every statistic:
//! floats are formatted with Rust's shortest-round-trip `Display`, so
//! `parse(render(r))` reproduces the exact same bits — the round-trip
//! integration tests rely on that.

use crate::campaign::protocol_by_name;
use crate::engine::{CampaignResults, CellSummary};
use crate::summary::{Summary, SummaryStat, METRIC_NAMES};

/// A campaign reconstructed from an export (no execution metadata).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCampaign {
    /// The campaign name recorded in the export.
    pub campaign: String,
    /// The aggregated cells, in export order.
    pub cells: Vec<CellSummary>,
}

/// Errors produced when parsing a CSV or JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub enum ExportError {
    /// The input was empty or had no data rows.
    Empty,
    /// A structural problem at the given line (1-based), with a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Empty => write!(f, "export contains no data rows"),
            ExportError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ExportError {}

pub(crate) fn malformed(line: usize, reason: impl Into<String>) -> ExportError {
    ExportError::Malformed {
        line,
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------- table --

/// Renders the headline metrics of every cell as a fixed-width table.
#[must_use]
pub fn render_table(results: &CampaignResults) -> String {
    let mut out = format!(
        "campaign '{}': {} cells, {} runs, {} workers, {:.2}s\n",
        results.campaign,
        results.cells.len(),
        results.total_runs(),
        results.workers,
        results.elapsed.as_secs_f64()
    );
    out.push_str(&format!(
        "{:<18} {:<10} {:>3} {:>7} {:>7} {:>9} {:>8} {:>7} {:>10} {:>9}\n",
        "label",
        "protocol",
        "n",
        "pdr",
        "±ci95",
        "delay_ms",
        "±ci95",
        "hops",
        "ctrl/dlvd",
        "tx/dlvd"
    ));
    for cell in &results.cells {
        let s = &cell.summary;
        out.push_str(&format!(
            "{:<18} {:<10} {:>3} {:>7.3} {:>7.3} {:>9.1} {:>8.1} {:>7.2} {:>10.1} {:>9.1}\n",
            cell.label,
            cell.protocol.name(),
            s.replications,
            s.delivery_ratio.mean,
            s.delivery_ratio.ci95,
            s.avg_delay_s.mean * 1e3,
            s.avg_delay_s.ci95 * 1e3,
            s.avg_hops.mean,
            s.control_per_delivered.mean,
            s.transmissions_per_delivered.mean,
        ));
    }
    if !results.quarantined.is_empty() {
        out.push_str(&format!(
            "quarantined: {} job(s) panicked on every allowed attempt\n",
            results.quarantined.len()
        ));
        for q in &results.quarantined {
            out.push_str(&format!(
                "  {} {} (seed {}): {} attempt(s), last error: {}\n",
                q.label,
                q.protocol.name(),
                q.seed,
                q.attempts,
                q.error,
            ));
        }
    }
    out
}

// ------------------------------------------------------------------ csv --

/// The CSV header matching [`render_csv`].
#[must_use]
pub fn csv_header() -> String {
    let mut cols = vec![
        "campaign".to_owned(),
        "label".to_owned(),
        "scenario".to_owned(),
        "protocol".to_owned(),
        "replications".to_owned(),
    ];
    for metric in METRIC_NAMES {
        for stat in ["mean", "std", "min", "max", "ci95"] {
            cols.push(format!("{metric}_{stat}"));
        }
    }
    cols.join(",")
}

/// Quotes a CSV field when it contains a comma, quote or newline
/// (RFC 4180: wrap in quotes, double any embedded quotes).
fn csv_quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Splits one CSV line into fields, honouring RFC 4180 quoting.
fn csv_split(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if current.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

/// Renders every cell as one CSV row (header included). Names containing
/// commas or quotes are RFC 4180-quoted.
#[must_use]
pub fn render_csv(results: &CampaignResults) -> String {
    let mut out = csv_header();
    out.push('\n');
    for cell in &results.cells {
        let mut row = vec![
            csv_quote(&results.campaign),
            csv_quote(&cell.label),
            csv_quote(&cell.scenario),
            cell.protocol.name().to_owned(),
            cell.summary.replications.to_string(),
        ];
        for (_, stat) in cell.summary.metrics() {
            row.push(stat.mean.to_string());
            row.push(stat.std_dev.to_string());
            row.push(stat.min.to_string());
            row.push(stat.max.to_string());
            row.push(stat.ci95.to_string());
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parses a CSV export produced by [`render_csv`].
pub fn parse_csv(input: &str) -> Result<ParsedCampaign, ExportError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or(ExportError::Empty)?;
    if header != csv_header() {
        return Err(malformed(1, "unrecognised CSV header"));
    }
    let mut campaign = None;
    let mut cells = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = csv_split(line);
        let expected = 5 + METRIC_NAMES.len() * 5;
        if fields.len() != expected {
            return Err(malformed(
                lineno,
                format!("expected {expected} fields, found {}", fields.len()),
            ));
        }
        campaign.get_or_insert_with(|| fields[0].to_owned());
        let protocol = protocol_by_name(&fields[3])
            .ok_or_else(|| malformed(lineno, format!("unknown protocol {:?}", fields[3])))?;
        let replications: usize = fields[4]
            .parse()
            .map_err(|_| malformed(lineno, "bad replication count"))?;
        let mut summary = Summary {
            replications,
            ..Summary::default()
        };
        for (m, metric) in METRIC_NAMES.iter().enumerate() {
            let base = 5 + m * 5;
            let parse = |i: usize| -> Result<f64, ExportError> {
                fields[i]
                    .parse()
                    .map_err(|_| malformed(lineno, format!("bad number {:?}", fields[i])))
            };
            *summary
                .metric_mut(metric)
                .expect("METRIC_NAMES is exhaustive") = SummaryStat {
                mean: parse(base)?,
                std_dev: parse(base + 1)?,
                min: parse(base + 2)?,
                max: parse(base + 3)?,
                ci95: parse(base + 4)?,
            };
        }
        cells.push(CellSummary {
            label: fields[1].to_owned(),
            scenario: fields[2].to_owned(),
            protocol,
            summary,
        });
    }
    Ok(ParsedCampaign {
        campaign: campaign.ok_or(ExportError::Empty)?,
        cells,
    })
}

// ---------------------------------------------------------------- jsonl --

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_stat(stat: &SummaryStat) -> String {
    format!(
        "{{\"mean\":{},\"std_dev\":{},\"min\":{},\"max\":{},\"ci95\":{}}}",
        stat.mean, stat.std_dev, stat.min, stat.max, stat.ci95
    )
}

/// Renders every cell as one JSON object per line.
#[must_use]
pub fn render_jsonl(results: &CampaignResults) -> String {
    let mut out = String::new();
    for cell in &results.cells {
        let metrics: Vec<String> = cell
            .summary
            .metrics()
            .into_iter()
            .map(|(name, stat)| format!("\"{name}\":{}", json_stat(stat)))
            .collect();
        out.push_str(&format!(
            "{{\"campaign\":\"{}\",\"label\":\"{}\",\"scenario\":\"{}\",\"protocol\":\"{}\",\"replications\":{},\"metrics\":{{{}}}}}\n",
            json_escape(&results.campaign),
            json_escape(&cell.label),
            json_escape(&cell.scenario),
            json_escape(cell.protocol.name()),
            cell.summary.replications,
            metrics.join(",")
        ));
    }
    out
}

/// A parsed JSON value (the subset JSONL exports, journals and telemetry
/// logs use).
pub(crate) enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// A minimal recursive-descent JSON parser over the export subset
/// (objects, arrays, strings, numbers).
pub(crate) struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        JsonParser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    pub(crate) fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            // Booleans surface as numbers (1/0): nothing in the export subset
            // needs to distinguish `true` from `1` on the read path.
            Some(b't') => self.literal(b"true", Json::Num(1.0)),
            Some(b'f') => self.literal(b"false", Json::Num(0.0)),
            other => Err(format!("unexpected token {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("unexpected token at byte {}", self.pos))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parses a JSONL export produced by [`render_jsonl`].
pub fn parse_jsonl(input: &str) -> Result<ParsedCampaign, ExportError> {
    let mut campaign = None;
    let mut cells = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut parser = JsonParser::new(line);
        let value = parser.value().map_err(|e| malformed(lineno, e))?;
        let field_str = |key: &str| -> Result<String, ExportError> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| malformed(lineno, format!("missing string field {key:?}")))
        };
        campaign.get_or_insert(field_str("campaign")?);
        let protocol_name = field_str("protocol")?;
        let protocol = protocol_by_name(&protocol_name)
            .ok_or_else(|| malformed(lineno, format!("unknown protocol {protocol_name:?}")))?;
        let replications = value
            .get("replications")
            .and_then(Json::as_f64)
            .ok_or_else(|| malformed(lineno, "missing replications"))?
            as usize;
        let metrics = value
            .get("metrics")
            .ok_or_else(|| malformed(lineno, "missing metrics object"))?;
        let mut summary = Summary {
            replications,
            ..Summary::default()
        };
        for metric in METRIC_NAMES {
            let obj = metrics
                .get(metric)
                .ok_or_else(|| malformed(lineno, format!("missing metric {metric:?}")))?;
            let num = |key: &str| -> Result<f64, ExportError> {
                obj.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| malformed(lineno, format!("missing {metric}.{key}")))
            };
            *summary
                .metric_mut(metric)
                .expect("METRIC_NAMES is exhaustive") = SummaryStat {
                mean: num("mean")?,
                std_dev: num("std_dev")?,
                min: num("min")?,
                max: num("max")?,
                ci95: num("ci95")?,
            };
        }
        cells.push(CellSummary {
            label: field_str("label")?,
            scenario: field_str("scenario")?,
            protocol,
            summary,
        });
    }
    Ok(ParsedCampaign {
        campaign: campaign.ok_or(ExportError::Empty)?,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use vanet_core::ProtocolKind;

    fn fake_results() -> CampaignResults {
        let mut summary = Summary {
            replications: 3,
            ..Summary::default()
        };
        *summary.metric_mut("delivery_ratio").unwrap() = SummaryStat {
            mean: 0.75,
            std_dev: 0.1,
            min: 0.6,
            max: 0.9,
            ci95: 0.248,
        };
        *summary.metric_mut("avg_delay_s").unwrap() = SummaryStat {
            mean: 0.012_345_678_9,
            std_dev: 1e-4,
            min: 0.011,
            max: 0.013,
            ci95: 2.5e-4,
        };
        CampaignResults {
            campaign: "fake".to_owned(),
            workers: 4,
            elapsed: Duration::from_millis(1),
            executed_jobs: 6,
            cached_jobs: 0,
            cells: vec![
                CellSummary {
                    label: "hw".to_owned(),
                    scenario: "highway-30".to_owned(),
                    protocol: ProtocolKind::Aodv,
                    summary: summary.clone(),
                },
                CellSummary {
                    label: "urb".to_owned(),
                    scenario: "urban-25".to_owned(),
                    protocol: ProtocolKind::Greedy,
                    summary,
                },
            ],
            quarantined: Vec::new(),
        }
    }

    #[test]
    fn csv_round_trips_exactly() {
        let results = fake_results();
        let parsed = parse_csv(&render_csv(&results)).unwrap();
        assert_eq!(parsed.campaign, "fake");
        assert_eq!(parsed.cells, results.cells);
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let results = fake_results();
        let parsed = parse_jsonl(&render_jsonl(&results)).unwrap();
        assert_eq!(parsed.campaign, "fake");
        assert_eq!(parsed.cells, results.cells);
    }

    #[test]
    fn table_mentions_every_cell() {
        let text = render_table(&fake_results());
        assert!(text.contains("AODV") && text.contains("Greedy"));
        assert!(text.contains("hw") && text.contains("urb"));
        assert!(!text.contains("quarantined"), "no footer without failures");
    }

    #[test]
    fn table_reports_quarantined_jobs() {
        let mut results = fake_results();
        results.quarantined.push(crate::QuarantinedJob {
            label: "bad".to_owned(),
            protocol: ProtocolKind::Aodv,
            seed: 9,
            attempts: 3,
            error: "poison fault fired at 1.000s".to_owned(),
        });
        let text = render_table(&results);
        assert!(text.contains("quarantined: 1 job(s)"));
        assert!(text.contains("bad AODV (seed 9): 3 attempt(s)"));
        assert!(text.contains("poison fault fired"));
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        assert_eq!(parse_csv(""), Err(ExportError::Empty));
        let err = parse_csv("not,a,header\n").unwrap_err();
        assert!(matches!(err, ExportError::Malformed { line: 1, .. }));
        let err = parse_jsonl("{\"campaign\":\"x\"}\n").unwrap_err();
        assert!(matches!(err, ExportError::Malformed { line: 1, .. }));
        let err = parse_jsonl("{oops\n").unwrap_err();
        assert!(matches!(err, ExportError::Malformed { line: 1, .. }));
    }

    #[test]
    fn json_escaping_survives_round_trip() {
        let mut results = fake_results();
        results.campaign = "we\"ird\\name\twith\nnews".to_owned();
        let parsed = parse_jsonl(&render_jsonl(&results)).unwrap();
        assert_eq!(parsed.campaign, results.campaign);
    }

    #[test]
    fn csv_quoting_survives_round_trip() {
        let mut results = fake_results();
        results.campaign = "sweep, with \"quotes\"".to_owned();
        results.cells[0].label = "highway, dense".to_owned();
        let parsed = parse_csv(&render_csv(&results)).unwrap();
        assert_eq!(parsed.campaign, results.campaign);
        assert_eq!(parsed.cells, results.cells);
    }
}
