//! Integration tests for the CampaignPlan v2 acceptance criteria: the
//! golden `Fixed`-policy equivalence with the legacy cross-product path,
//! journal-based resume executing only missing jobs, cell-level caching of
//! edited plans, and adaptive (`ConfidenceWidth`) replication — all
//! byte-identical to cold serial runs.

use std::sync::atomic::{AtomicU64, Ordering};
use vanet_core::{run_scenario, FaultPlan, ProtocolKind, Scenario};
use vanet_runner::{
    render_jsonl, CampaignPlan, CampaignSpec, ReplicationPolicy, Runner, Summary, JOURNAL_FILE,
};
use vanet_sim::SimDuration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vanet-resume-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tiny(vehicles: usize, seed: u64) -> Scenario {
    Scenario::highway(vehicles)
        .with_seed(seed)
        .with_flows(2)
        .with_duration(SimDuration::from_secs(10.0))
}

/// A mixed plan: different protocols bound to different cells (the fig5
/// shape the old cross-product spec could not express).
fn mixed_plan() -> CampaignPlan {
    CampaignPlan::new("mixed")
        .cell_with(
            "aodv-bare",
            tiny(14, 100).with_name("mixed-aodv"),
            ProtocolKind::Aodv,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "drr-rsus",
            tiny(14, 100).with_rsus(2).with_name("mixed-drr"),
            ProtocolKind::Drr,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "greedy",
            tiny(20, 300).with_name("mixed-greedy"),
            ProtocolKind::Greedy,
            ReplicationPolicy::Fixed(3),
        )
}

#[test]
fn fixed_policy_plan_is_byte_identical_to_legacy_spec_path() {
    // Golden: the redesigned engine must reproduce the CampaignSpec
    // cross-product results exactly. The reference is computed with a
    // hand-rolled serial loop over the legacy job expansion — fully
    // independent of run_plan's scheduling, journaling and rounds.
    let spec = CampaignSpec::new("golden")
        .scenario("hw", tiny(12, 100))
        .scenario("hw2", tiny(16, 200))
        .protocols([ProtocolKind::Flooding, ProtocolKind::Greedy])
        .replications(2);
    let results = Runner::new().with_workers(4).run(&spec);

    let mut expected = Vec::new();
    for (label, scenario) in &spec.scenarios {
        for &protocol in &spec.protocols {
            let reports: Vec<_> = (0..spec.replications)
                .map(|r| {
                    run_scenario(
                        scenario.clone().with_seed(scenario.seed + r as u64),
                        protocol,
                    )
                })
                .collect();
            expected.push((
                label.clone(),
                protocol,
                Summary::from_reports(&reports).unwrap(),
            ));
        }
    }
    assert_eq!(results.cells.len(), expected.len());
    for (cell, (label, protocol, summary)) in results.cells.iter().zip(&expected) {
        assert_eq!(&cell.label, label);
        assert_eq!(cell.protocol, *protocol);
        assert_eq!(
            &cell.summary, summary,
            "cell {label}/{protocol} diverged from the legacy serial reduction"
        );
    }
}

#[test]
fn interrupted_journal_resumes_executing_only_missing_jobs() {
    let plan = mixed_plan();
    let total_jobs = plan.initial_job_count();
    let cold = Runner::new().with_workers(2).run_plan(&plan);

    // First run with a journal: everything executes, everything is recorded.
    let dir = temp_dir("interrupt");
    let first = Runner::new()
        .with_workers(2)
        .with_journal(&dir)
        .run_plan(&plan);
    assert_eq!(first.executed_jobs, total_jobs);
    assert_eq!(first.cached_jobs, 0);
    assert_eq!(
        render_jsonl(&cold),
        render_jsonl(&first),
        "journaling changed the results"
    );

    // Simulate an interrupted campaign: keep only the first 3 journal lines
    // (plus half of the next line, as a crash mid-write would leave).
    let path = dir.join(JOURNAL_FILE);
    let full = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), total_jobs);
    let kept = 3;
    let mut truncated = lines[..kept].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[kept][..lines[kept].len() / 2]);
    std::fs::write(&path, &truncated).unwrap();

    // Resume: only the missing jobs run, and the merged results are
    // byte-identical to the cold run.
    let resumed = Runner::new()
        .with_workers(2)
        .with_journal(&dir)
        .run_plan(&plan);
    assert_eq!(resumed.cached_jobs, kept, "cached jobs must be replayed");
    assert_eq!(
        resumed.executed_jobs,
        total_jobs - kept,
        "only the jobs missing from the journal may execute"
    );
    assert_eq!(
        render_jsonl(&cold),
        render_jsonl(&resumed),
        "resumed results diverged from the cold run"
    );

    // A third run replays everything from the journal: zero executions.
    let replayed = Runner::new()
        .with_workers(2)
        .with_journal(&dir)
        .run_plan(&plan);
    assert_eq!(replayed.executed_jobs, 0);
    assert_eq!(replayed.cached_jobs, total_jobs);
    assert_eq!(render_jsonl(&cold), render_jsonl(&replayed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editing_a_plan_reruns_only_the_changed_cells() {
    let dir = temp_dir("edit");
    let plan = mixed_plan();
    let first = Runner::new().with_journal(&dir).run_plan(&plan);
    assert_eq!(first.executed_jobs, plan.initial_job_count());

    // Edit one cell (different RSU count → different scenario content hash)
    // and add a new one; the untouched cells must replay from the cache.
    let edited = CampaignPlan::new("mixed-edited")
        .cell_with(
            "aodv-bare",
            tiny(14, 100).with_name("mixed-aodv"),
            ProtocolKind::Aodv,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "drr-rsus",
            tiny(14, 100).with_rsus(4).with_name("mixed-drr"), // edited: 2 → 4 RSUs
            ProtocolKind::Drr,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "greedy",
            tiny(20, 300).with_name("mixed-greedy"),
            ProtocolKind::Greedy,
            ReplicationPolicy::Fixed(3),
        )
        .cell(
            "zone-new",
            tiny(10, 900).with_name("mixed-zone"),
            ProtocolKind::Zone,
        );
    let second = Runner::new().with_journal(&dir).run_plan(&edited);
    assert_eq!(
        second.executed_jobs, 3,
        "2 edited DRR jobs + 1 new Zone job"
    );
    assert_eq!(second.cached_jobs, 5, "aodv (2) and greedy (3) jobs cached");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_resume_composes_with_the_journal() {
    let plan = mixed_plan();
    let dir = temp_dir("shard");
    // Shard 0 of 2 owns cells 0 and 2 (4 jobs); run and journal them.
    let shard0 = Runner::new()
        .with_shard(0, 2)
        .with_journal(&dir)
        .run_plan(&plan);
    assert_eq!(shard0.cells.len(), 2);
    assert_eq!(shard0.executed_jobs, 5);
    // Re-running the same shard replays entirely from the journal; the other
    // shard finds none of its own jobs there.
    let again = Runner::new()
        .with_shard(0, 2)
        .with_journal(&dir)
        .run_plan(&plan);
    assert_eq!(again.executed_jobs, 0);
    assert_eq!(again.cached_jobs, 5);
    let shard1 = Runner::new()
        .with_shard(1, 2)
        .with_journal(&dir)
        .run_plan(&plan);
    assert_eq!(shard1.cells.len(), 1);
    assert_eq!(shard1.executed_jobs, 2);
    assert_eq!(shard1.cached_jobs, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A plan mixing per-cell protocols with one adaptive cell — the acceptance
/// shape from the issue.
fn adaptive_plan(target_width: f64, max: usize) -> CampaignPlan {
    CampaignPlan::new("adaptive")
        .cell_with(
            "flooding-fixed",
            tiny(10, 400).with_name("adaptive-flooding"),
            ProtocolKind::Flooding,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "greedy-adaptive",
            tiny(16, 500).with_name("adaptive-greedy"),
            ProtocolKind::Greedy,
            ReplicationPolicy::confidence_width("delivery_ratio", target_width, 2, max),
        )
}

#[test]
fn adaptive_replication_respects_bounds_and_determinism() {
    // A generous target stops at the minimum; an unreachable one runs to
    // the cap. Either way the result is deterministic across worker counts.
    let generous = Runner::new().run_plan(&adaptive_plan(10.0, 8));
    assert_eq!(generous.cells[0].summary.replications, 2);
    assert_eq!(generous.cells[1].summary.replications, 2);

    let strict = Runner::new().run_plan(&adaptive_plan(1e-12, 5));
    let adaptive_cell = &strict.cells[1];
    assert_eq!(
        adaptive_cell.summary.replications, 5,
        "an unreachable target must stop at the cap"
    );
    assert_eq!(strict.cells[0].summary.replications, 2);

    for workers in [1, 4] {
        let again = Runner::new()
            .with_workers(workers)
            .run_plan(&adaptive_plan(1e-12, 5));
        assert_eq!(
            render_jsonl(&strict),
            render_jsonl(&again),
            "adaptive campaign diverged at {workers} workers"
        );
    }
}

#[test]
fn adaptive_campaign_resumes_byte_identically() {
    let plan = adaptive_plan(1e-12, 4);
    let cold = Runner::new().run_plan(&plan);
    let dir = temp_dir("adaptive");
    let first = Runner::new().with_journal(&dir).run_plan(&plan);
    assert_eq!(render_jsonl(&cold), render_jsonl(&first));
    let executed_total = first.executed_jobs;
    assert!(executed_total > plan.initial_job_count());

    // Drop the last journal line: the resume must re-run exactly that job
    // (adaptive rounds make the same decisions from the same reports).
    let path = dir.join(JOURNAL_FILE);
    let full = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = full.lines().collect();
    lines.pop();
    let mut rest = lines.join("\n");
    rest.push('\n');
    std::fs::write(&path, &rest).unwrap();

    let resumed = Runner::new().with_journal(&dir).run_plan(&plan);
    assert_eq!(resumed.executed_jobs, 1);
    assert_eq!(resumed.cached_jobs, executed_total - 1);
    assert_eq!(
        render_jsonl(&cold),
        render_jsonl(&resumed),
        "resumed adaptive campaign diverged from the cold run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A plan whose cells all carry scheduled disruptions — the fault-injection
/// acceptance shape: determinism and resume must hold with faults active.
fn faulted_plan() -> CampaignPlan {
    CampaignPlan::new("faulted")
        .cell_with(
            "flooding-outage",
            tiny(14, 100)
                .with_name("faulted-flooding")
                .with_faults(FaultPlan::new().node_outage(3, 2.0, 6.0)),
            ProtocolKind::Flooding,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "greedy-jam",
            tiny(16, 200).with_name("faulted-greedy").with_faults(
                FaultPlan::new()
                    .jam(5, 0.7, 1.0, 8.0)
                    .burst_loss(0.2, 4.0, 6.0),
            ),
            ProtocolKind::Greedy,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "drr-rsu-down",
            tiny(14, 300)
                .with_rsus(2)
                .with_name("faulted-drr")
                .with_faults(FaultPlan::new().rsu_outage(0, 3.0, 7.0)),
            ProtocolKind::Drr,
            ReplicationPolicy::Fixed(2),
        )
}

#[test]
fn faulted_campaign_is_deterministic_across_worker_counts() {
    let serial = Runner::new().with_workers(1).run_plan(&faulted_plan());
    for workers in [2, 4] {
        let parallel = Runner::new()
            .with_workers(workers)
            .run_plan(&faulted_plan());
        assert_eq!(
            render_jsonl(&serial),
            render_jsonl(&parallel),
            "faulted campaign diverged at {workers} workers"
        );
    }
}

#[test]
fn killed_faulted_campaign_resumes_byte_identically() {
    // The acceptance criterion: terminate a campaign mid-run (simulated by
    // truncating the journal mid-line, as a crash mid-write would), then a
    // resume must produce exports byte-identical to an uninterrupted run.
    let plan = faulted_plan();
    let total_jobs = plan.initial_job_count();
    let cold = Runner::new().run_plan(&plan);

    let dir = temp_dir("fault-kill");
    let first = Runner::new().with_journal(&dir).run_plan(&plan);
    assert_eq!(render_jsonl(&cold), render_jsonl(&first));

    let path = dir.join(JOURNAL_FILE);
    let full = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), total_jobs);
    let kept = 2;
    let mut truncated = lines[..kept].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[kept][..lines[kept].len() / 3]);
    std::fs::write(&path, &truncated).unwrap();

    let resumed = Runner::new().with_journal(&dir).run_plan(&plan);
    assert_eq!(resumed.cached_jobs, kept);
    assert_eq!(resumed.executed_jobs, total_jobs - kept);
    assert_eq!(
        render_jsonl(&cold),
        render_jsonl(&resumed),
        "resumed faulted campaign diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A healthy plan plus one cell that panics deterministically mid-sim.
fn partly_poisoned_plan() -> CampaignPlan {
    CampaignPlan::new("poisoned")
        .cell(
            "healthy",
            tiny(12, 100).with_name("poisoned-healthy"),
            ProtocolKind::Flooding,
        )
        .cell(
            "poisoned",
            tiny(12, 200)
                .with_name("poisoned-cell")
                .with_faults(FaultPlan::new().poison(1.0)),
            ProtocolKind::Greedy,
        )
}

#[test]
fn quarantined_campaign_resumes_byte_identically() {
    let plan = partly_poisoned_plan();
    let cold = Runner::new().run_plan(&plan);
    assert_eq!(cold.quarantined.len(), 1);
    assert_eq!(cold.cells.len(), 1, "only the healthy cell may summarise");

    let dir = temp_dir("quarantine");
    let first = Runner::new().with_journal(&dir).run_plan(&plan);
    assert_eq!(first.quarantined.len(), 1);
    assert_eq!(render_jsonl(&cold), render_jsonl(&first));

    // Resume: the healthy job replays from the cache, the quarantine entry
    // replays from the journal — nothing executes, exports stay identical.
    let resumed = Runner::new().with_journal(&dir).run_plan(&plan);
    assert_eq!(resumed.executed_jobs, 0);
    assert_eq!(resumed.cached_jobs, 1);
    assert_eq!(resumed.quarantined.len(), 1);
    assert_eq!(
        render_jsonl(&cold),
        render_jsonl(&resumed),
        "quarantined campaign diverged on resume"
    );

    // Raising the retry budget re-runs (and re-quarantines) the poisoned
    // job instead of replaying the stale entry.
    let retried = Runner::new()
        .with_journal(&dir)
        .with_max_retries(2)
        .run_plan(&plan);
    assert_eq!(
        retried.executed_jobs, 1,
        "a bigger budget must re-run the job"
    );
    assert_eq!(retried.quarantined.len(), 1);
    assert_eq!(retried.quarantined[0].attempts, 3);
    std::fs::remove_dir_all(&dir).ok();
}
