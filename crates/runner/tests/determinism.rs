//! Integration tests for the campaign engine's determinism contract and the
//! lossless export round-trip — the acceptance criteria of the runner
//! subsystem.

use vanet_core::{ProtocolKind, Scenario};
use vanet_runner::{parse_csv, parse_jsonl, render_csv, render_jsonl, CampaignSpec, Runner};
use vanet_sim::SimDuration;

/// A 2-scenario × 2-protocol × 3-seed campaign, small enough for CI.
fn campaign() -> CampaignSpec {
    CampaignSpec::new("determinism")
        .scenario(
            "highway",
            Scenario::highway(20)
                .with_flows(2)
                .with_duration(SimDuration::from_secs(15.0)),
        )
        .scenario(
            "urban",
            Scenario::urban(20)
                .with_flows(2)
                .with_duration(SimDuration::from_secs(15.0)),
        )
        .protocols([ProtocolKind::Aodv, ProtocolKind::Greedy])
        .replications(3)
}

#[test]
fn campaign_is_deterministic_across_worker_counts() {
    let spec = campaign();
    let serial = Runner::new().with_workers(1).run(&spec);
    for workers in [2, 4, 8] {
        let parallel = Runner::new().with_workers(workers).run(&spec);
        assert_eq!(
            serial.cells, parallel.cells,
            "{workers}-worker campaign diverged from the serial run"
        );
        // Byte-identical, not merely equal-within-epsilon: the exports are
        // deterministic functions of the cells.
        assert_eq!(
            render_jsonl(&serial),
            render_jsonl(&parallel),
            "JSONL export differs at {workers} workers"
        );
        assert_eq!(render_csv(&serial), render_csv(&parallel));
    }
}

#[test]
fn summaries_carry_real_spread_information() {
    let results = Runner::new().run(&campaign());
    assert_eq!(results.cells.len(), 4);
    for cell in &results.cells {
        let s = &cell.summary;
        assert_eq!(s.replications, 3);
        assert!(s.data_sent.mean > 0.0, "no traffic in {}", cell.label);
        assert!(s.delivery_ratio.min <= s.delivery_ratio.mean + 1e-12);
        assert!(s.delivery_ratio.mean <= s.delivery_ratio.max + 1e-12);
        assert!(s.delivery_ratio.std_dev >= 0.0);
        assert!(s.delivery_ratio.ci95 >= 0.0);
    }
    // Across three different seeds at least one metric must actually vary —
    // if every std-dev were zero the replication seeds would not be applied.
    assert!(
        results.cells.iter().any(|c| {
            c.summary
                .metrics()
                .iter()
                .any(|(_, stat)| stat.std_dev > 0.0)
        }),
        "replications show no variance at all"
    );
}

#[test]
fn jsonl_and_csv_round_trip_the_cells() {
    let results = Runner::new().run(&campaign());

    let jsonl = render_jsonl(&results);
    assert_eq!(jsonl.lines().count(), results.cells.len());
    let parsed = parse_jsonl(&jsonl).expect("JSONL parses");
    assert_eq!(parsed.campaign, results.campaign);
    assert_eq!(parsed.cells.len(), results.cells.len());
    assert_eq!(parsed.cells, results.cells, "JSONL round-trip is lossless");

    let csv = render_csv(&results);
    assert_eq!(
        csv.lines().count(),
        results.cells.len() + 1,
        "header + one row per cell"
    );
    let parsed = parse_csv(&csv).expect("CSV parses");
    assert_eq!(parsed.cells.len(), results.cells.len());
    assert_eq!(parsed.cells, results.cells, "CSV round-trip is lossless");
}
