//! Integration tests for the streaming telemetry tap: tap totals agreeing
//! with the simulation's own report, byte-determinism across shard splits
//! and resume replays, crash-recovery of a truncated `telemetry.jsonl`,
//! and the `analyze` pipeline producing verdicts from a real campaign.

use std::sync::atomic::{AtomicU64, Ordering};
use vanet_core::{
    run_scenario, ProtocolKind, Scenario, Simulation, WindowedTap, DROP_REASON_COUNT,
};
use vanet_runner::{
    run_analyze, CampaignPlan, ReplicationPolicy, Runner, TelemetrySettings, JOURNAL_FILE,
    TELEMETRY_FILE,
};
use vanet_sim::SimDuration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vanet-teltest-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tiny(vehicles: usize, seed: u64) -> Scenario {
    Scenario::highway(vehicles)
        .with_seed(seed)
        .with_flows(2)
        .with_duration(SimDuration::from_secs(10.0))
}

fn plan() -> CampaignPlan {
    CampaignPlan::new("tel")
        .cell_with(
            "hw-greedy",
            tiny(14, 100).with_name("tel-greedy"),
            ProtocolKind::Greedy,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "hw-flooding",
            tiny(14, 100).with_name("tel-flooding"),
            ProtocolKind::Flooding,
            ReplicationPolicy::Fixed(2),
        )
        .cell_with(
            "hw-aodv",
            tiny(18, 300).with_name("tel-aodv"),
            ProtocolKind::Aodv,
            ReplicationPolicy::Fixed(2),
        )
}

fn settings() -> TelemetrySettings {
    TelemetrySettings {
        window_s: 2.0,
        regions_per_axis: 4,
    }
}

fn read(path: &std::path::Path) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}

/// Drops the last line of a file, simulating a crash between lines (plus
/// the newline, so recovery also exercises the repair path on reopen).
fn truncate_last_line(path: &std::path::Path) {
    let text = read(path);
    let without_last = match text.trim_end_matches('\n').rfind('\n') {
        Some(pos) => &text[..=pos],
        None => "",
    };
    std::fs::write(path, without_last).unwrap();
}

fn sorted_lines(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_owned)
        .collect();
    lines.sort();
    lines
}

#[test]
fn tap_totals_agree_with_the_untapped_report() {
    for protocol in [
        ProtocolKind::Greedy,
        ProtocolKind::Flooding,
        ProtocolKind::Aodv,
    ] {
        let scenario = tiny(16, 7);
        let reference = run_scenario(scenario.clone(), protocol);

        let tap = WindowedTap::new(SimDuration::from_secs(2.0), 4);
        let mut sim = Simulation::with_telemetry(scenario, protocol, tap);
        let report = sim.run();
        let tap = sim.into_telemetry();

        // The tapped simulation is the same simulation: its report must be
        // identical to the untapped run.
        assert_eq!(report, reference, "{protocol}: tap changed the simulation");

        let windows = tap.windows();
        let originations: u64 = windows.iter().map(|w| w.originations).sum();
        let deliveries: u64 = windows.iter().map(|w| w.deliveries).sum();
        let drops: u64 = windows.iter().map(|w| w.drops.iter().sum::<u64>()).sum();
        let delay_sum: f64 = windows.iter().map(|w| w.delay_sum_s).sum();
        assert_eq!(originations, report.data_sent, "{protocol}: originations");
        assert_eq!(
            deliveries,
            report.data_delivered + report.duplicate_deliveries,
            "{protocol}: deliveries (report counts unique + duplicate)"
        );
        assert_eq!(drops, report.drops, "{protocol}: drops");
        if report.data_delivered > 0 {
            // Report delay averages unique deliveries only; the tap's delay
            // sum covers every delivery, so it can only be larger.
            assert!(
                delay_sum >= report.avg_delay_s * report.data_delivered as f64 - 1e-6,
                "{protocol}: delay mass"
            );
        }
        let region_sent: u64 = tap.regions().iter().map(|r| r.sent).sum();
        let window_sent: u64 = windows.iter().map(|w| w.sent_data + w.sent_control).sum();
        assert_eq!(region_sent, window_sent, "{protocol}: region/window sent");
        assert_eq!(DROP_REASON_COUNT, 8);
    }
}

#[test]
fn telemetry_hash_is_deterministic_across_runs() {
    let hash = |_: usize| {
        let tap = WindowedTap::new(SimDuration::from_secs(1.0), 8);
        let mut sim = Simulation::with_telemetry(tiny(14, 11), ProtocolKind::Yan, tap);
        sim.run();
        sim.into_telemetry().content_hash()
    };
    assert_eq!(hash(0), hash(1));
}

#[test]
fn shard_split_unions_to_the_unsharded_telemetry() {
    let plan = plan();
    let full_dir = temp_dir("full");
    let _ = Runner::new()
        .with_progress(false)
        .with_journal(&full_dir)
        .with_telemetry(settings())
        .run_plan(&plan);

    let mut shard_lines = Vec::new();
    let mut shard_dirs = Vec::new();
    for index in 0..2 {
        let dir = temp_dir(&format!("shard{index}"));
        let _ = Runner::new()
            .with_progress(false)
            .with_shard(index, 2)
            .with_journal(&dir)
            .with_telemetry(settings())
            .run_plan(&plan);
        shard_lines.extend(sorted_lines(&read(&dir.join(TELEMETRY_FILE))));
        shard_dirs.push(dir);
    }
    shard_lines.sort();
    assert_eq!(
        shard_lines,
        sorted_lines(&read(&full_dir.join(TELEMETRY_FILE))),
        "every job's telemetry line must be byte-identical across shard splits"
    );

    std::fs::remove_dir_all(&full_dir).ok();
    for dir in shard_dirs {
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resume_replays_to_byte_identical_artifacts() {
    let plan = plan();
    let dir = temp_dir("resume");
    // Single worker: file line order is execution order, so a truncated
    // tail re-executes into exactly the bytes the cold run wrote.
    let runner = || {
        Runner::new()
            .with_progress(false)
            .with_workers(1)
            .with_journal(&dir)
            .with_telemetry(settings())
    };
    let _ = runner().run_plan(&plan);
    let journal_cold = read(&dir.join(JOURNAL_FILE));
    let telemetry_cold = read(&dir.join(TELEMETRY_FILE));
    assert!(!journal_cold.is_empty() && !telemetry_cold.is_empty());

    // Crash-like truncation of both logs' final lines.
    truncate_last_line(&dir.join(JOURNAL_FILE));
    truncate_last_line(&dir.join(TELEMETRY_FILE));
    let resumed = runner().run_plan(&plan);
    assert_eq!(resumed.executed_jobs, 1, "only the truncated job re-runs");
    assert_eq!(journal_cold, read(&dir.join(JOURNAL_FILE)));
    assert_eq!(telemetry_cold, read(&dir.join(TELEMETRY_FILE)));

    // A fully-cached resume touches nothing.
    let cached = runner().run_plan(&plan);
    assert_eq!(cached.executed_jobs, 0);
    assert_eq!(telemetry_cold, read(&dir.join(TELEMETRY_FILE)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_telemetry_heals_by_reexecuting_only_that_job() {
    let plan = plan();
    let dir = temp_dir("heal");
    let runner = || {
        Runner::new()
            .with_progress(false)
            .with_workers(1)
            .with_journal(&dir)
            .with_telemetry(settings())
    };
    let _ = runner().run_plan(&plan);
    let telemetry_cold = read(&dir.join(TELEMETRY_FILE));
    let journal_cold = read(&dir.join(JOURNAL_FILE));

    // Journal intact, telemetry missing its last line: the journal hit
    // alone must NOT count as cached, because the telemetry would stay
    // incomplete forever.
    truncate_last_line(&dir.join(TELEMETRY_FILE));
    let healed = runner().run_plan(&plan);
    assert_eq!(healed.executed_jobs, 1, "telemetry miss forces one re-run");
    assert_eq!(telemetry_cold, read(&dir.join(TELEMETRY_FILE)));
    assert_eq!(
        journal_cold,
        read(&dir.join(JOURNAL_FILE)),
        "the re-run result is deterministic, so the journal keeps its bytes \
         (duplicate keys resolve last-wins on load)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeseries_round_trips_dtn_buffer_columns() {
    // A DTN campaign's windowed buffer telemetry, exported through
    // `analyze --timeseries`, must reconstruct the run's own report: counter
    // columns sum back to the report totals and the occupancy column's max
    // is the report's buffer peak.
    let plan = CampaignPlan::new("tel-dtn").cell_with(
        "epidemic",
        tiny(14, 100).with_name("tel-dtn-epidemic"),
        ProtocolKind::Epidemic,
        ReplicationPolicy::Fixed(1),
    );
    let dir = temp_dir("dtn");
    let _ = Runner::new()
        .with_progress(false)
        .with_journal(&dir)
        .with_telemetry(settings())
        .run_plan(&plan);

    let timeseries = run_analyze(&["--timeseries".to_owned(), dir.display().to_string()])
        .expect("timeseries mode");
    let mut lines = timeseries.text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<&str> = lines.next().expect("csv header").split(',').collect();
    let idx = |name: &str| {
        header
            .iter()
            .position(|h| *h == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let columns = [
        "bundles_stored",
        "bundles_forwarded",
        "bundles_expired",
        "bundles_evicted",
        "custody_transfers",
    ];
    let mut sums = [0.0_f64; 5];
    let mut peak = 0.0_f64;
    let mut seed = None;
    for row in lines {
        let cells: Vec<&str> = row.split(',').collect();
        seed = Some(cells[idx("seed")].parse::<u64>().expect("seed cell"));
        for (sum, name) in sums.iter_mut().zip(columns) {
            *sum += cells[idx(name)].parse::<f64>().expect("numeric cell");
        }
        peak = peak.max(cells[idx("buffer_peak")].parse::<f64>().expect("peak"));
    }

    // Re-run the job the journal recorded and compare against its report.
    let report = run_scenario(
        tiny(14, seed.expect("at least one row")),
        ProtocolKind::Epidemic,
    );
    let expected = [
        report.bundles_stored,
        report.bundles_forwarded,
        report.bundles_expired,
        report.bundles_evicted,
        report.custody_transfers,
    ];
    assert!(report.bundles_stored > 0, "epidemic must buffer bundles");
    for ((sum, want), name) in sums.iter().zip(expected).zip(columns) {
        assert_eq!(*sum as u64, want, "{name}: windowed sum vs report total");
    }
    assert_eq!(
        peak as u64, report.buffer_peak,
        "windowed max vs report peak"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_produces_csv_and_significance_verdicts_from_a_real_campaign() {
    let plan = CampaignPlan::new("tel-analyze")
        .cell_with(
            "greedy",
            tiny(14, 100).with_name("tel-an-greedy"),
            ProtocolKind::Greedy,
            ReplicationPolicy::Fixed(3),
        )
        .cell_with(
            "flooding",
            tiny(14, 100).with_name("tel-an-flooding"),
            ProtocolKind::Flooding,
            ReplicationPolicy::Fixed(3),
        );
    let dir = temp_dir("analyze");
    let _ = Runner::new()
        .with_progress(false)
        .with_journal(&dir)
        .with_telemetry(settings())
        .run_plan(&plan);
    let dir_arg = dir.display().to_string();

    let significance =
        run_analyze(&["--journal".to_owned(), dir_arg.clone()]).expect("significance mode");
    assert_eq!(significance.regressions, 0);
    assert!(significance.text.contains("greedy vs flooding"));
    assert!(
        significance.text.contains("significant at 95%"),
        "a verdict line is always rendered: {}",
        significance.text
    );

    let timeseries =
        run_analyze(&["--timeseries".to_owned(), dir_arg.clone()]).expect("timeseries mode");
    let mut lines = timeseries.text.lines();
    let header = lines.next().expect("csv header");
    assert!(header.starts_with("key,label,seed,window,t_s,originations,"));
    assert!(header.contains("drop_no_route") && header.contains("medium_transmissions"));
    // 6 jobs x 10s / 2s windows (+1 sealed partial window at the horizon).
    let rows = lines.filter(|l| !l.trim().is_empty()).count();
    assert!(rows >= 6 * 5, "expected full windowed rows, got {rows}");

    let regions = run_analyze(&["--regions".to_owned(), dir_arg]).expect("regions mode");
    assert!(regions.text.starts_with("key,label,seed,region,rx,ry,"));
    assert!(regions.text.lines().count() > 6 * 4, "4x4 grid per job");

    std::fs::remove_dir_all(&dir).ok();
}
