//! # vanet-bench — experiment generators for every figure and table
//!
//! Each `figN_*` function regenerates the data behind the corresponding
//! figure of the paper; `table1` regenerates the category comparison. The
//! binaries in `src/bin/` print the results, and the Criterion benches in
//! `benches/` time the underlying models and run scaled-down versions of the
//! same experiments so regressions in simulation cost are caught.
//!
//! All generators accept a [`Effort`] knob: `Quick` keeps runs short enough
//! for CI and Criterion; `Full` produces the numbers recorded in
//! `EXPERIMENTS.md`.
//!
//! Every simulation-backed generator executes through the `vanet-runner`
//! campaign engine, so figure regeneration parallelises across all available
//! cores while staying byte-identical to a serial run; the per-cell
//! [`vanet_runner::Summary`] statistics are available via the `*_campaign`
//! variants, with the legacy mean-`Report` return types kept for the
//! binaries and Criterion benches.

#![warn(missing_docs)]

use vanet_core::{
    render_table, run_scenario, ExperimentCell, ProtocolKind, Report, Scenario, TrafficRegime,
};
use vanet_links::direction::{same_direction, DirectionGroup};
use vanet_links::lifetime::{link_lifetime_constant_acceleration, link_lifetime_constant_speed};
use vanet_links::probability::expected_link_duration;
use vanet_mobility::Vec2;
use vanet_runner::{CampaignPlan, CampaignResults, CampaignSpec, ReplicationPolicy, Runner};
use vanet_sim::SimDuration;

/// How much work an experiment generator should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Short runs: suitable for CI and Criterion iterations.
    Quick,
    /// The full runs recorded in EXPERIMENTS.md.
    Full,
}

impl Effort {
    fn duration(self) -> SimDuration {
        match self {
            Effort::Quick => SimDuration::from_secs(20.0),
            Effort::Full => SimDuration::from_secs(90.0),
        }
    }

    fn seeds(self) -> usize {
        match self {
            Effort::Quick => 1,
            Effort::Full => 3,
        }
    }
}

/// Figure 1 — the taxonomy, rendered as one line per category.
#[must_use]
pub fn fig1_taxonomy() -> Vec<String> {
    vanet_core::taxonomy_lines()
}

/// Figure 2 — connectivity-based RREQ/RREP discovery: how many control
/// packets a single AODV discovery costs as the network grows (the broadcast
/// storm behind Fig. 2's flood).
#[must_use]
pub fn fig2_discovery(effort: Effort) -> Vec<(usize, Report)> {
    // Single source of truth: the runner catalog defines the Fig. 2 grid;
    // only the replication count is an Effort concern of this crate.
    let spec = vanet_runner::campaign_by_name("fig2", effort == Effort::Full)
        .expect("fig2 is a catalog campaign")
        .replications(effort.seeds());
    let sizes: Vec<usize> = spec
        .scenarios
        .iter()
        .map(|(_, s)| s.vehicle_count())
        .collect();
    Runner::new()
        .run(&spec)
        .cells
        .iter()
        .zip(sizes)
        .map(|(cell, n)| (n, cell.mean_report()))
        .collect()
}

/// One row of the Fig. 3 sweep: the analytic link lifetime for a given
/// relative speed and acceleration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimePoint {
    /// Relative speed `v_i − v_j` in m/s.
    pub relative_speed: f64,
    /// Relative acceleration `a_i − a_j` in m/s².
    pub relative_acceleration: f64,
    /// Initial separation `d_0` in metres.
    pub initial_separation: f64,
    /// Closed-form lifetime, seconds.
    pub lifetime_s: f64,
    /// Expected lifetime when the relative speed is uncertain (σ = 3 m/s).
    pub expected_lifetime_s: f64,
}

/// Figure 3 — link lifetime as a function of the mobility parameters
/// (Eq. 1–4), for both the constant-speed and constant-acceleration cases.
#[must_use]
pub fn fig3_link_lifetime() -> Vec<LifetimePoint> {
    let range = 250.0;
    let mut points = Vec::new();
    for &d0 in &[-150.0, 0.0, 150.0] {
        for &dv in &[1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0] {
            for &da in &[0.0, 0.5, -0.5] {
                let lifetime = if da == 0.0 {
                    link_lifetime_constant_speed(d0, dv, 0.0, range)
                } else {
                    link_lifetime_constant_acceleration(d0, dv, 0.0, da, 0.0, range)
                };
                points.push(LifetimePoint {
                    relative_speed: dv,
                    relative_acceleration: da,
                    initial_separation: d0,
                    lifetime_s: lifetime.duration_s,
                    expected_lifetime_s: expected_link_duration(d0, dv, 3.0, range),
                });
            }
        }
    }
    points
}

/// One row of the Fig. 4 comparison: link duration for same-direction vs
/// opposite-direction vehicle pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionPoint {
    /// Speed of both vehicles, m/s.
    pub speed: f64,
    /// Lifetime when both travel in the same direction (5 m/s speed delta).
    pub same_direction_lifetime_s: f64,
    /// Lifetime when they travel in opposite directions.
    pub opposite_direction_lifetime_s: f64,
}

/// Figure 4 — the direction decomposition: same-direction links last an order
/// of magnitude longer than opposite-direction links, which is why the
/// mobility-based protocols filter on direction.
#[must_use]
pub fn fig4_direction() -> Vec<DirectionPoint> {
    let range = 250.0;
    [10.0, 15.0, 20.0, 25.0, 30.0, 35.0]
        .into_iter()
        .map(|speed| {
            let same = link_lifetime_constant_speed(0.0, speed, speed - 5.0, range);
            let opposite = link_lifetime_constant_speed(0.0, speed, -speed, range);
            DirectionPoint {
                speed,
                same_direction_lifetime_s: same.duration_s,
                opposite_direction_lifetime_s: opposite.duration_s,
            }
        })
        .collect()
}

/// Sanity statistics for the same-direction predicate on random pairs: the
/// fraction of same-group pairs correctly classified (used by the Fig. 4
/// binary to demonstrate the projection test).
#[must_use]
pub fn fig4_predicate_agreement() -> f64 {
    let mut agree = 0;
    let mut total = 0;
    for angle_deg in (0..360).step_by(15) {
        for other_deg in (0..360).step_by(15) {
            let a_vel = Vec2::from_angle(f64::from(angle_deg).to_radians()) * 20.0;
            let b_vel = Vec2::from_angle(f64::from(other_deg).to_radians()) * 20.0;
            let a_pos = Vec2::new(0.0, 0.0);
            let b_pos = Vec2::new(120.0, 35.0);
            let predicate = same_direction(a_pos, a_vel, b_pos, b_vel);
            let groups = DirectionGroup::same_group(a_vel, b_vel);
            if predicate == groups {
                agree += 1;
            }
            total += 1;
        }
    }
    f64::from(agree) / f64::from(total)
}

/// Figure 5 — RSU-assisted routing in sparse traffic: delivery ratio of DRR
/// with increasing numbers of road-side units versus plain AODV.
#[must_use]
pub fn fig5_rsu(effort: Effort) -> Vec<(String, Report)> {
    let base = Scenario::highway_regime(TrafficRegime::Sparse)
        .with_flows(5)
        .with_seed(5)
        .with_duration(effort.duration());
    let rsu_counts: &[usize] = match effort {
        Effort::Quick => &[4],
        Effort::Full => &[2, 4, 8],
    };
    // AODV without infrastructure and DRR with increasing RSU counts bind
    // different protocols to different scenarios — per-cell bindings make
    // that one CampaignPlan instead of the two specs it used to take.
    let replication = ReplicationPolicy::Fixed(effort.seeds());
    let mut plan = CampaignPlan::new("fig5").cell_with(
        "AODV / 0 RSUs",
        base.clone().with_name("fig5-aodv"),
        ProtocolKind::Aodv,
        replication.clone(),
    );
    for &rsus in rsu_counts {
        plan = plan.cell_with(
            format!("DRR / {rsus} RSUs"),
            base.clone()
                .with_rsus(rsus)
                .with_name(format!("fig5-drr-{rsus}")),
            ProtocolKind::Drr,
            replication.clone(),
        );
    }
    Runner::new()
        .run_plan(&plan)
        .cells
        .iter()
        .map(|cell| (cell.label.clone(), cell.mean_report()))
        .collect()
}

/// Figure 6 — geographic/zone routing on the urban grid: duplicate data
/// transmissions and delivery for flooding vs zone-restricted flooding vs
/// greedy forwarding.
#[must_use]
pub fn fig6_geographic(effort: Effort) -> Vec<Report> {
    // Single source of truth: the runner catalog defines the Fig. 6 grid.
    let spec = vanet_runner::campaign_by_name("fig6", effort == Effort::Full)
        .expect("fig6 is a catalog campaign")
        .replications(effort.seeds());
    Runner::new()
        .run(&spec)
        .cells
        .iter()
        .map(vanet_runner::CellSummary::mean_report)
        .collect()
}

/// The Table-I campaign spec: one representative protocol per category over
/// the three traffic regimes.
#[must_use]
pub fn table1_spec(effort: Effort) -> CampaignSpec {
    // Single source of truth: the runner catalog defines the Table-I grid;
    // only the replication count is an Effort concern of this crate.
    vanet_runner::campaign_by_name("table1", effort == Effort::Full)
        .expect("table1 is a catalog campaign")
        .replications(effort.seeds())
}

/// Table I with full per-cell statistics (mean, std-dev, min/max, 95% CI).
#[must_use]
pub fn table1_campaign(effort: Effort) -> CampaignResults {
    Runner::new().run(&table1_spec(effort))
}

/// Table I — the category comparison over the three traffic regimes, one
/// representative protocol per category, reduced to mean reports.
#[must_use]
pub fn table1(effort: Effort) -> Vec<ExperimentCell> {
    let results = table1_campaign(effort);
    results
        .cells
        .iter()
        .map(|cell| ExperimentCell {
            protocol: cell.protocol,
            label: cell.label.clone(),
            report: cell.mean_report(),
            seeds: cell.summary.replications,
        })
        .collect()
}

/// Renders Table I cells as text (re-exported convenience).
#[must_use]
pub fn render(cells: &[ExperimentCell]) -> String {
    render_table(cells)
}

/// A single quick end-to-end run, used by the protocol benches.
#[must_use]
pub fn quick_run(kind: ProtocolKind, vehicles: usize, seed: u64) -> Report {
    let scenario = Scenario::highway(vehicles)
        .with_seed(seed)
        .with_flows(2)
        .with_duration(SimDuration::from_secs(15.0));
    run_scenario(scenario, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_lists_all_six_categories() {
        assert_eq!(fig1_taxonomy().len(), 6);
    }

    #[test]
    fn fig3_lifetimes_decrease_with_relative_speed() {
        let points = fig3_link_lifetime();
        assert!(!points.is_empty());
        let at = |dv: f64| {
            points
                .iter()
                .find(|p| {
                    p.relative_speed == dv
                        && p.relative_acceleration == 0.0
                        && p.initial_separation == 0.0
                })
                .unwrap()
                .lifetime_s
        };
        assert!(at(1.0) > at(10.0));
        assert!(at(10.0) > at(60.0));
    }

    #[test]
    fn fig4_same_direction_links_last_longer() {
        for p in fig4_direction() {
            assert!(p.same_direction_lifetime_s > p.opposite_direction_lifetime_s);
        }
        assert!(fig4_predicate_agreement() > 0.5);
    }

    #[test]
    fn fig2_overhead_grows_with_network_size() {
        let rows = fig2_discovery(Effort::Quick);
        assert!(rows.len() >= 2);
        let first = &rows.first().unwrap().1;
        let last = &rows.last().unwrap().1;
        assert!(last.control_packets > first.control_packets);
    }

    #[test]
    fn fig5_rsus_improve_sparse_delivery() {
        let rows = fig5_rsu(Effort::Quick);
        let aodv = &rows[0].1;
        let best_drr = rows[1..]
            .iter()
            .map(|(_, r)| r.delivery_ratio)
            .fold(0.0f64, f64::max);
        assert!(
            best_drr >= aodv.delivery_ratio,
            "DRR with RSUs ({best_drr}) should not be worse than AODV ({})",
            aodv.delivery_ratio
        );
    }

    #[test]
    fn fig6_zone_is_no_more_expensive_than_flooding() {
        // On the small quick grid the corridor prunes little, so allow parity;
        // the strict reduction is asserted by the urban integration test and
        // the full-effort run recorded in EXPERIMENTS.md.
        let rows = fig6_geographic(Effort::Quick);
        assert_eq!(rows.len(), 3);
        let flooding = &rows[0];
        let zone = &rows[1];
        assert!(zone.data_transmissions <= flooding.data_transmissions * 11 / 10 + 10);
    }

    #[test]
    fn table1_covers_regimes_and_categories() {
        let cells = table1(Effort::Quick);
        assert_eq!(cells.len(), 18);
        let text = render(&cells);
        assert!(text.contains("AODV") && text.contains("DRR") && text.contains("Yan"));
        assert!(text.contains("Epidemic"), "DTN representative in Table I");
    }

    #[test]
    fn table1_through_runner_matches_serial_matrix() {
        // The campaign engine's reduction must be byte-identical to the
        // single-threaded run_matrix path.
        let spec = table1_spec(Effort::Quick);
        let from_runner = table1(Effort::Quick);
        let serial = vanet_core::run_matrix_with_workers(
            &spec.scenarios,
            &spec.protocols,
            Effort::Quick.seeds(),
            1,
        );
        assert_eq!(from_runner, serial);
    }
}
