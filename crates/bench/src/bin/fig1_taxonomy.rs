//! Regenerates Figure 1: the taxonomy of VANET routing techniques.
fn main() {
    println!("Figure 1 — taxonomy of VANET routing techniques\n");
    for line in vanet_bench::fig1_taxonomy() {
        println!("  {line}");
    }
}
