//! Regenerates Table I: pros/cons of the five routing categories, quantified
//! as delivery ratio, delay, overhead and route breaks per traffic regime —
//! now with replication statistics (mean ± 95% CI) from the campaign engine.
use vanet_bench::{table1_campaign, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    println!("Table I — representative protocol per category, three traffic regimes\n");
    print!("{}", vanet_runner::render_table(&table1_campaign(effort)));
    println!("\nExpected qualitative shape (paper):");
    println!("  connectivity: simple but overhead / broadcast storm at density");
    println!("  mobility:     reliable in normal traffic, degraded in sparse & congested");
    println!("  infrastructure: reliable everywhere RSUs exist, costly to deploy");
    println!("  location:     low overhead, suboptimal paths (local maxima)");
    println!("  probability:  efficient in its calibrated regime");
}
