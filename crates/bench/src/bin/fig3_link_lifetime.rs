//! Regenerates Figure 3: link lifetime vs mobility parameters (Eq. 1-4).
fn main() {
    println!("Figure 3 — link lifetime vs relative speed / acceleration (r = 250 m)\n");
    println!(
        "{:>6} {:>6} {:>8} {:>12} {:>14}",
        "d0_m", "dv_mps", "da_mps2", "lifetime_s", "E[lifetime]_s"
    );
    for p in vanet_bench::fig3_link_lifetime() {
        println!(
            "{:>6.0} {:>6.1} {:>8.1} {:>12.1} {:>14.1}",
            p.initial_separation,
            p.relative_speed,
            p.relative_acceleration,
            p.lifetime_s,
            p.expected_lifetime_s
        );
    }
}
