//! Regenerates Figure 6: zone/gateway geographic routing on the urban grid.
use vanet_bench::{fig6_geographic, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    println!("Figure 6 — geographic / zone routing on the urban grid\n");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>10}",
        "protocol", "pdr", "data_tx", "dupl_deliv", "delay_ms"
    );
    for r in fig6_geographic(effort) {
        println!(
            "{:>10} {:>8.3} {:>12} {:>12} {:>10.1}",
            r.protocol,
            r.delivery_ratio,
            r.data_transmissions,
            r.duplicate_deliveries,
            r.avg_delay_s * 1e3
        );
    }
}
