//! Regenerates Figure 4: the velocity-projection direction test and its
//! effect on link duration.
fn main() {
    println!("Figure 4 — same-direction vs opposite-direction link duration\n");
    println!(
        "{:>10} {:>16} {:>20}",
        "speed_mps", "same_dir_life_s", "opposite_dir_life_s"
    );
    for p in vanet_bench::fig4_direction() {
        println!(
            "{:>10.0} {:>16.1} {:>20.1}",
            p.speed, p.same_direction_lifetime_s, p.opposite_direction_lifetime_s
        );
    }
    println!(
        "\nprojection predicate vs velocity-group classification agreement: {:.0}%",
        vanet_bench::fig4_predicate_agreement() * 100.0
    );
}
