//! Regenerates Figure 2: RREQ/RREP discovery cost versus network size.
use vanet_bench::{fig2_discovery, Effort};

fn main() {
    let effort = effort_from_args();
    println!("Figure 2 — connectivity-based discovery (AODV RREQ/RREP) vs network size\n");
    println!(
        "{:>9} {:>10} {:>12} {:>8} {:>10}",
        "vehicles", "ctrl_pkts", "ctrl/dlvd", "pdr", "delay_ms"
    );
    for (n, r) in fig2_discovery(effort) {
        println!(
            "{:>9} {:>10} {:>12.1} {:>8.3} {:>10.1}",
            n,
            r.control_packets,
            r.control_per_delivered,
            r.delivery_ratio,
            r.avg_delay_s * 1e3
        );
    }
}

fn effort_from_args() -> Effort {
    if std::env::args().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    }
}
