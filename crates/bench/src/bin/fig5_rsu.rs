//! Regenerates Figure 5: RSU-assisted routing in sparse traffic.
use vanet_bench::{fig5_rsu, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    println!("Figure 5 — road-side-unit assisted routing in sparse traffic\n");
    println!(
        "{:>16} {:>8} {:>10} {:>10}",
        "configuration", "pdr", "delay_ms", "ctrl_pkts"
    );
    for (label, r) in fig5_rsu(effort) {
        println!(
            "{:>16} {:>8.3} {:>10.1} {:>10}",
            label,
            r.delivery_ratio,
            r.avg_delay_s * 1e3,
            r.control_packets
        );
    }
}
