//! Criterion benchmarks that run scaled-down versions of every figure/table
//! generator, so the cost of regenerating the paper's evaluation is tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use vanet_bench::{
    fig1_taxonomy, fig2_discovery, fig3_link_lifetime, fig4_direction, fig5_rsu, fig6_geographic,
    table1, Effort,
};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_generators");
    group.sample_size(10);
    group.bench_function("fig1_taxonomy", |b| b.iter(fig1_taxonomy));
    group.bench_function("fig3_link_lifetime", |b| b.iter(fig3_link_lifetime));
    group.bench_function("fig4_direction", |b| b.iter(fig4_direction));
    group.finish();

    let mut sims = c.benchmark_group("figure_simulations_quick");
    sims.sample_size(10);
    sims.bench_function("fig2_discovery", |b| b.iter(|| fig2_discovery(Effort::Quick)));
    sims.bench_function("fig5_rsu", |b| b.iter(|| fig5_rsu(Effort::Quick)));
    sims.bench_function("fig6_geographic", |b| b.iter(|| fig6_geographic(Effort::Quick)));
    sims.bench_function("table1", |b| b.iter(|| table1(Effort::Quick)));
    sims.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
