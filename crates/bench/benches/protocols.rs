//! Criterion benchmarks of end-to-end simulation cost for one representative
//! protocol per category (Table I's rows), on a small common scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vanet_bench::quick_run;
use vanet_core::ProtocolKind;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_protocol_simulation");
    group.sample_size(10);
    for kind in ProtocolKind::REPRESENTATIVES {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| quick_run(kind, 40, 7));
        });
    }
    group.finish();
}

fn bench_density_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_density_scaling_aodv");
    group.sample_size(10);
    for vehicles in [20usize, 40, 80] {
        group.bench_with_input(
            BenchmarkId::from_parameter(vehicles),
            &vehicles,
            |b, &vehicles| {
                b.iter(|| quick_run(ProtocolKind::Aodv, vehicles, 7));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_density_scaling);
criterion_main!(benches);
