//! Criterion benchmarks of the analytic models (Fig. 3 / Fig. 4 / Sec. VII):
//! link-lifetime closed forms, the numeric integrator, the direction
//! predicate and the probability models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vanet_links::direction::same_direction;
use vanet_links::lifetime::{
    link_lifetime_constant_acceleration, link_lifetime_constant_speed, link_lifetime_numeric,
    link_lifetime_planar,
};
use vanet_links::probability::{
    expected_link_duration, link_availability, receipt_probability,
    segment_connectivity_probability,
};
use vanet_mobility::Vec2;

fn bench_lifetime_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_link_lifetime");
    group.bench_function("constant_speed_closed_form", |b| {
        b.iter(|| link_lifetime_constant_speed(black_box(-50.0), 33.0, 28.0, 250.0))
    });
    group.bench_function("constant_acceleration_closed_form", |b| {
        b.iter(|| link_lifetime_constant_acceleration(black_box(-50.0), 33.0, 28.0, 0.5, -0.2, 250.0))
    });
    group.bench_function("planar_closed_form", |b| {
        b.iter(|| {
            link_lifetime_planar(
                black_box(Vec2::new(0.0, 0.0)),
                Vec2::new(33.0, 0.0),
                Vec2::new(80.0, 4.0),
                Vec2::new(28.0, 0.0),
                250.0,
            )
        })
    });
    group.bench_function("numeric_integration", |b| {
        b.iter(|| link_lifetime_numeric(black_box(-50.0), |_| 33.0, |_| 28.0, 250.0, 0.05, 600.0))
    });
    group.finish();
}

fn bench_direction(c: &mut Criterion) {
    c.bench_function("fig4_direction_predicate", |b| {
        b.iter(|| {
            same_direction(
                black_box(Vec2::new(0.0, 0.0)),
                Vec2::new(30.0, 0.5),
                Vec2::new(100.0, 4.0),
                Vec2::new(28.0, -0.5),
            )
        })
    });
}

fn bench_probability_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec7_probability_models");
    group.bench_function("expected_link_duration", |b| {
        b.iter(|| expected_link_duration(black_box(50.0), 5.0, 3.0, 250.0))
    });
    group.bench_function("link_availability", |b| {
        b.iter(|| link_availability(black_box(50.0), 5.0, 3.0, 250.0, 10.0))
    });
    group.bench_function("segment_connectivity", |b| {
        b.iter(|| segment_connectivity_probability(black_box(0.02), 2_000.0, 250.0))
    });
    group.bench_function("receipt_probability", |b| {
        b.iter(|| receipt_probability(black_box(180.0), 250.0, 2.7, 4.0))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lifetime_models, bench_direction, bench_probability_models
}
criterion_main!(benches);
