//! Multi-lane bidirectional highway scenario.
//!
//! The highway is modelled as a ring of configurable length: vehicles that
//! pass the end re-enter at the beginning, which keeps the density constant
//! over arbitrarily long runs (equivalent to "a vehicle leaves the stretch and
//! another one enters"). Vehicles follow the IDM car-following law within
//! their lane and may change lanes when blocked, so raising the vehicle count
//! produces genuine congestion.

use crate::car_following::{IdmParams, LeaderInfo};
use crate::distributions::{Sampler, TruncatedNormal};
use crate::geometry::{Heading, Position, Vec2};
use crate::model::{MobilityModel, RegionBounds};
use crate::vehicle::{VehicleKind, VehicleState};
use serde::{Deserialize, Serialize};
use vanet_sim::{NodeId, SimDuration, SimRng};

/// Configuration and builder for a [`HighwayModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HighwayBuilder {
    length_m: f64,
    lanes_per_direction: usize,
    lane_width_m: f64,
    vehicles: usize,
    buses: usize,
    speed_limit_mps: f64,
    speed_mean_mps: f64,
    speed_std_mps: f64,
    bidirectional: bool,
    /// When set, westbound lanes genuinely travel in decreasing `s` instead
    /// of sharing the eastbound integration direction. Off by default: the
    /// historical behaviour (westbound vehicles report a westward velocity
    /// vector but advance in `s` like everyone else) is baked into every
    /// pinned golden report, so real counterflow is strictly opt-in.
    #[serde(default)]
    counterflow: bool,
    idm: IdmParams,
    lane_change_enabled: bool,
    first_node_id: u32,
}

impl Default for HighwayBuilder {
    fn default() -> Self {
        HighwayBuilder {
            length_m: 5_000.0,
            lanes_per_direction: 2,
            lane_width_m: 4.0,
            vehicles: 50,
            buses: 0,
            speed_limit_mps: 36.0, // ~130 km/h
            speed_mean_mps: 30.0,  // ~108 km/h
            speed_std_mps: 4.0,
            bidirectional: true,
            counterflow: false,
            idm: IdmParams::default(),
            lane_change_enabled: true,
            first_node_id: 0,
        }
    }
}

impl HighwayBuilder {
    /// Creates a builder with defaults (5 km, 2+2 lanes, 50 vehicles).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the highway length in metres.
    #[must_use]
    pub fn length_m(mut self, length: f64) -> Self {
        self.length_m = length;
        self
    }

    /// Sets the number of lanes per direction.
    #[must_use]
    pub fn lanes_per_direction(mut self, lanes: usize) -> Self {
        self.lanes_per_direction = lanes.max(1);
        self
    }

    /// Sets the total number of vehicles (cars + buses).
    #[must_use]
    pub fn vehicles(mut self, count: usize) -> Self {
        self.vehicles = count;
        self
    }

    /// Sets how many of the vehicles are buses (message ferries).
    #[must_use]
    pub fn buses(mut self, count: usize) -> Self {
        self.buses = count;
        self
    }

    /// Sets the legal speed limit `v_m` in m/s.
    #[must_use]
    pub fn speed_limit_mps(mut self, v: f64) -> Self {
        self.speed_limit_mps = v;
        self
    }

    /// Sets the mean desired speed in m/s.
    #[must_use]
    pub fn speed_mean_mps(mut self, v: f64) -> Self {
        self.speed_mean_mps = v;
        self
    }

    /// Sets the standard deviation of desired speed in m/s.
    #[must_use]
    pub fn speed_std_mps(mut self, v: f64) -> Self {
        self.speed_std_mps = v;
        self
    }

    /// Enables or disables the opposite carriageway.
    #[must_use]
    pub fn bidirectional(mut self, yes: bool) -> Self {
        self.bidirectional = yes;
        self
    }

    /// Makes westbound lanes genuinely travel in decreasing `s` (see the
    /// field note: off by default to keep pinned behaviour). With real
    /// counterflow, opposite carriageways close at twice the mean speed and
    /// act as natural bundle ferries between partitioned clusters — the
    /// contact pattern the store-carry-forward protocols rely on.
    #[must_use]
    pub fn counterflow(mut self, yes: bool) -> Self {
        self.counterflow = yes;
        self
    }

    /// Overrides the car-following parameters.
    #[must_use]
    pub fn idm(mut self, idm: IdmParams) -> Self {
        self.idm = idm;
        self
    }

    /// Enables or disables lane changing.
    #[must_use]
    pub fn lane_changes(mut self, yes: bool) -> Self {
        self.lane_change_enabled = yes;
        self
    }

    /// Sets the node id assigned to the first vehicle (subsequent vehicles get
    /// consecutive ids). Useful when vehicles coexist with RSUs that occupy a
    /// separate id range.
    #[must_use]
    pub fn first_node_id(mut self, id: u32) -> Self {
        self.first_node_id = id;
        self
    }

    /// Vehicle density per direction in vehicles/km (informational).
    #[must_use]
    pub fn density_per_km(&self) -> f64 {
        let directions = if self.bidirectional { 2.0 } else { 1.0 };
        self.vehicles as f64 / directions / (self.length_m / 1_000.0)
    }

    /// Builds the highway, placing vehicles uniformly along the ring with
    /// per-vehicle desired speeds drawn from a truncated normal distribution.
    #[must_use]
    pub fn build(self, rng: &mut SimRng) -> HighwayModel {
        let lane_count = if self.bidirectional {
            self.lanes_per_direction * 2
        } else {
            self.lanes_per_direction
        };
        let speed_dist = TruncatedNormal::new(
            self.speed_mean_mps,
            self.speed_std_mps,
            5.0_f64.min(self.speed_mean_mps * 0.5),
            self.speed_limit_mps,
        );
        let mut vehicles = Vec::with_capacity(self.vehicles);
        for i in 0..self.vehicles {
            let kind = if i < self.buses {
                VehicleKind::Bus
            } else {
                VehicleKind::Car
            };
            let lane = rng.uniform_usize(lane_count.max(1));
            let s = rng.uniform_range(0.0, self.length_m.max(1.0));
            let desired = match kind {
                VehicleKind::Bus => (self.speed_mean_mps * 0.7).min(self.speed_limit_mps),
                _ => speed_dist.sample(rng),
            };
            let idm = match kind {
                VehicleKind::Bus => IdmParams::bus(),
                _ => self.idm,
            };
            vehicles.push(HighwayVehicle {
                id: NodeId(self.first_node_id + i as u32),
                kind,
                lane,
                s,
                speed: desired * rng.uniform_range(0.85, 1.0),
                desired_speed: desired,
                acceleration: 0.0,
                idm,
            });
        }
        let mut model = HighwayModel {
            config: self,
            vehicles,
            states: Vec::new(),
            lane_count,
        };
        model.refresh_states();
        model
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HighwayVehicle {
    id: NodeId,
    kind: VehicleKind,
    lane: usize,
    /// Longitudinal position along the ring, metres in `[0, length)`.
    s: f64,
    speed: f64,
    desired_speed: f64,
    acceleration: f64,
    idm: IdmParams,
}

/// A multi-lane (optionally bidirectional) ring highway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HighwayModel {
    config: HighwayBuilder,
    vehicles: Vec<HighwayVehicle>,
    states: Vec<VehicleState>,
    lane_count: usize,
}

impl HighwayModel {
    /// The builder/configuration this model was constructed from.
    #[must_use]
    pub fn config(&self) -> &HighwayBuilder {
        &self.config
    }

    /// Length of the highway ring in metres.
    #[must_use]
    pub fn length_m(&self) -> f64 {
        self.config.length_m
    }

    /// Whether a lane index belongs to the eastbound (forward) carriageway.
    #[must_use]
    pub fn lane_is_eastbound(&self, lane: usize) -> bool {
        lane < self.config.lanes_per_direction
    }

    fn lane_y(&self, lane: usize) -> f64 {
        let w = self.config.lane_width_m;
        if self.lane_is_eastbound(lane) {
            -((lane as f64 + 0.5) * w)
        } else {
            ((lane - self.config.lanes_per_direction) as f64 + 0.5) * w + w
        }
    }

    fn heading_of_lane(&self, lane: usize) -> Heading {
        if self.lane_is_eastbound(lane) {
            Heading::EAST
        } else {
            Heading::WEST
        }
    }

    /// Gap in metres from `behind` to `ahead` travelling around the ring.
    fn ring_gap(&self, behind: f64, ahead: f64) -> f64 {
        let l = self.config.length_m;
        let mut gap = ahead - behind;
        if gap < 0.0 {
            gap += l;
        }
        gap
    }

    /// Whether vehicles in `lane` advance in decreasing `s` (opt-in
    /// counterflow on the westbound carriageway).
    fn lane_reversed(&self, lane: usize) -> bool {
        self.config.counterflow && !self.lane_is_eastbound(lane)
    }

    fn leader_of(&self, idx: usize, lane: usize) -> Option<LeaderInfo> {
        let me = &self.vehicles[idx];
        let reversed = self.lane_reversed(lane);
        let mut best: Option<(f64, usize)> = None;
        for (j, other) in self.vehicles.iter().enumerate() {
            if j == idx || other.lane != lane {
                continue;
            }
            let gap = if reversed {
                self.ring_gap(other.s, me.s)
            } else {
                self.ring_gap(me.s, other.s)
            };
            if gap <= 0.0 {
                continue;
            }
            match best {
                Some((g, _)) if g <= gap => {}
                _ => best = Some((gap, j)),
            }
        }
        best.map(|(gap, j)| LeaderInfo {
            gap: (gap - self.vehicles[j].idm.vehicle_length).max(0.01),
            approach_rate: me.speed - self.vehicles[j].speed,
        })
    }

    fn try_lane_change(&mut self, idx: usize, rng: &mut SimRng) {
        let me = &self.vehicles[idx];
        let current_lane = me.lane;
        let blocked = match self.leader_of(idx, current_lane) {
            Some(l) => l.gap < 20.0 && me.speed < me.desired_speed * 0.8,
            None => false,
        };
        if !blocked || !rng.chance(0.3) {
            return;
        }
        // Candidate lanes: adjacent lanes on the same carriageway.
        let eastbound = self.lane_is_eastbound(current_lane);
        let candidates: Vec<usize> = [current_lane.wrapping_sub(1), current_lane + 1]
            .into_iter()
            .filter(|&l| l < self.lane_count && self.lane_is_eastbound(l) == eastbound)
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for &cand in &candidates {
            let gap = self.leader_of(idx, cand).map_or(f64::INFINITY, |l| l.gap);
            if gap > 30.0 {
                match best {
                    Some((_, g)) if g >= gap => {}
                    _ => best = Some((cand, gap)),
                }
            }
        }
        if let Some((lane, _)) = best {
            self.vehicles[idx].lane = lane;
        }
    }

    fn refresh_states(&mut self) {
        self.states = self
            .vehicles
            .iter()
            .map(|v| {
                let heading = self.heading_of_lane(v.lane);
                VehicleState {
                    id: v.id,
                    kind: v.kind,
                    position: Vec2::new(v.s, self.lane_y(v.lane)),
                    velocity: heading.unit() * v.speed,
                    acceleration: v.acceleration,
                    heading,
                    lane: v.lane,
                    desired_speed: v.desired_speed,
                }
            })
            .collect();
    }

    /// Mean speed over all vehicles, m/s.
    #[must_use]
    pub fn mean_speed(&self) -> f64 {
        if self.vehicles.is_empty() {
            return 0.0;
        }
        self.vehicles.iter().map(|v| v.speed).sum::<f64>() / self.vehicles.len() as f64
    }
}

impl MobilityModel for HighwayModel {
    fn step(&mut self, dt: SimDuration, rng: &mut SimRng) {
        let dt = dt.as_secs();
        if dt <= 0.0 {
            return;
        }
        if self.config.lane_change_enabled {
            for idx in 0..self.vehicles.len() {
                self.try_lane_change(idx, rng);
            }
        }
        // Compute accelerations from the current snapshot, then integrate.
        let accels: Vec<f64> = (0..self.vehicles.len())
            .map(|idx| {
                let v = &self.vehicles[idx];
                let leader = self.leader_of(idx, v.lane);
                v.idm.acceleration(v.speed, v.desired_speed, leader)
            })
            .collect();
        let length = self.config.length_m;
        let counterflow = self.config.counterflow;
        let eastbound_lanes = self.config.lanes_per_direction;
        for (v, a) in self.vehicles.iter_mut().zip(accels) {
            v.acceleration = a;
            v.speed = (v.speed + a * dt).clamp(0.0, self.config.speed_limit_mps);
            if counterflow && v.lane >= eastbound_lanes {
                v.s -= v.speed * dt;
                while v.s < 0.0 {
                    v.s += length;
                }
            } else {
                v.s += v.speed * dt;
                while v.s >= length {
                    v.s -= length;
                }
            }
        }
        self.refresh_states();
    }

    fn states(&self) -> &[VehicleState] {
        &self.states
    }

    fn state(&self, id: NodeId) -> Option<&VehicleState> {
        self.states.iter().find(|s| s.id == id)
    }

    fn bounds(&self) -> RegionBounds {
        let half_width = self.config.lane_width_m * (self.config.lanes_per_direction as f64 + 1.0);
        RegionBounds::new(
            Position::new(0.0, -half_width),
            Position::new(self.config.length_m, half_width),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(vehicles: usize, seed: u64) -> HighwayModel {
        let mut rng = SimRng::new(seed);
        HighwayBuilder::new()
            .length_m(2_000.0)
            .lanes_per_direction(2)
            .vehicles(vehicles)
            .build(&mut rng)
    }

    #[test]
    fn builder_creates_requested_vehicles() {
        let hw = build(30, 1);
        assert_eq!(hw.states().len(), 30);
        assert_eq!(hw.len(), 30);
        assert!(!hw.is_empty());
        for s in hw.states() {
            assert!(s.position.x >= 0.0 && s.position.x < 2_000.0);
            assert!(s.desired_speed <= 36.0);
            assert!(s.speed() > 0.0);
        }
    }

    #[test]
    fn vehicles_move_and_wrap() {
        let mut hw = build(20, 2);
        let before: Vec<f64> = hw.states().iter().map(|s| s.position.x).collect();
        let mut rng = SimRng::new(99);
        for _ in 0..100 {
            hw.step(SimDuration::from_secs(1.0), &mut rng);
        }
        let after: Vec<f64> = hw.states().iter().map(|s| s.position.x).collect();
        assert_ne!(before, after);
        for x in &after {
            assert!(
                (0.0..2_000.0).contains(x),
                "positions must stay on the ring, got {x}"
            );
        }
    }

    #[test]
    fn eastbound_and_westbound_headings() {
        let mut rng = SimRng::new(3);
        let hw = HighwayBuilder::new()
            .vehicles(60)
            .bidirectional(true)
            .build(&mut rng);
        let east = hw.states().iter().filter(|s| s.velocity.x > 0.0).count();
        let west = hw.states().iter().filter(|s| s.velocity.x < 0.0).count();
        assert_eq!(east + west, 60);
        assert!(
            east > 0 && west > 0,
            "both carriageways should be populated"
        );
    }

    #[test]
    fn counterflow_moves_westbound_vehicles_backwards_along_the_ring() {
        let displacements = |counterflow: bool| -> Vec<(f64, f64)> {
            let mut rng = SimRng::new(17);
            let mut hw = HighwayBuilder::new()
                .length_m(2_000.0)
                .vehicles(40)
                .bidirectional(true)
                .counterflow(counterflow)
                .build(&mut rng);
            let before: Vec<f64> = hw.states().iter().map(|s| s.position.x).collect();
            hw.step(SimDuration::from_secs(1.0), &mut rng);
            hw.states()
                .iter()
                .zip(before)
                .map(|(s, b)| {
                    let mut d = s.position.x - b;
                    // Unwrap ring crossings: one second of motion is far
                    // shorter than half the ring.
                    if d > 1_000.0 {
                        d -= 2_000.0;
                    } else if d < -1_000.0 {
                        d += 2_000.0;
                    }
                    (d, s.velocity.x)
                })
                .collect()
        };
        // Default behaviour: everyone advances in increasing `s`, even the
        // vehicles whose velocity vector points west. This quirk is baked
        // into every pinned golden report, so it must stay the default.
        for (d, _) in displacements(false) {
            assert!(d > 0.0, "without counterflow all vehicles advance, got {d}");
        }
        // Opt-in counterflow: displacement sign follows the carriageway.
        let with = displacements(true);
        assert!(with.iter().any(|&(_, vx)| vx < 0.0), "westbound lane empty");
        for (d, vx) in with {
            assert!(
                d.signum() == vx.signum(),
                "displacement {d} must match heading {vx}"
            );
        }
    }

    #[test]
    fn unidirectional_has_single_heading() {
        let mut rng = SimRng::new(4);
        let hw = HighwayBuilder::new()
            .vehicles(40)
            .bidirectional(false)
            .build(&mut rng);
        assert!(hw.states().iter().all(|s| s.velocity.x > 0.0));
    }

    #[test]
    fn dense_traffic_is_slower_than_sparse() {
        let mut rng = SimRng::new(5);
        let mut sparse = HighwayBuilder::new()
            .length_m(2_000.0)
            .lanes_per_direction(1)
            .bidirectional(false)
            .vehicles(10)
            .lane_changes(false)
            .build(&mut rng);
        let mut dense = HighwayBuilder::new()
            .length_m(2_000.0)
            .lanes_per_direction(1)
            .bidirectional(false)
            .vehicles(150)
            .lane_changes(false)
            .build(&mut rng);
        let mut r1 = SimRng::new(6);
        let mut r2 = SimRng::new(6);
        for _ in 0..300 {
            sparse.step(SimDuration::from_secs(0.5), &mut r1);
            dense.step(SimDuration::from_secs(0.5), &mut r2);
        }
        assert!(
            dense.mean_speed() < sparse.mean_speed() * 0.8,
            "congestion should reduce mean speed: dense {} vs sparse {}",
            dense.mean_speed(),
            sparse.mean_speed()
        );
    }

    #[test]
    fn deterministic_given_same_seed() {
        let mut a = build(25, 7);
        let mut b = build(25, 7);
        let mut ra = SimRng::new(8);
        let mut rb = SimRng::new(8);
        for _ in 0..50 {
            a.step(SimDuration::from_secs(0.5), &mut ra);
            b.step(SimDuration::from_secs(0.5), &mut rb);
        }
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn buses_are_created() {
        let mut rng = SimRng::new(9);
        let hw = HighwayBuilder::new().vehicles(10).buses(3).build(&mut rng);
        let buses = hw
            .states()
            .iter()
            .filter(|s| s.kind == VehicleKind::Bus)
            .count();
        assert_eq!(buses, 3);
    }

    #[test]
    fn state_lookup_by_id() {
        let hw = build(10, 10);
        assert!(hw.state(NodeId(3)).is_some());
        assert!(hw.state(NodeId(999)).is_none());
        assert!(hw.position(NodeId(3)).is_some());
    }

    #[test]
    fn first_node_id_offsets_ids() {
        let mut rng = SimRng::new(11);
        let hw = HighwayBuilder::new()
            .vehicles(5)
            .first_node_id(100)
            .build(&mut rng);
        let ids: Vec<u32> = hw.states().iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn bounds_contain_all_vehicles() {
        let hw = build(40, 12);
        let b = hw.bounds();
        for s in hw.states() {
            assert!(b.contains(s.position), "vehicle outside bounds");
        }
    }

    #[test]
    fn density_helper() {
        let b = HighwayBuilder::new()
            .length_m(1_000.0)
            .vehicles(40)
            .bidirectional(true);
        assert!((b.density_per_km() - 20.0).abs() < 1e-9);
    }
}
