//! Manhattan-grid urban scenario.
//!
//! Vehicles travel along the streets of a regular grid, choose to go
//! straight, turn left or turn right at every intersection, and wrap around
//! the grid borders (torus) so the vehicle density stays constant. The urban
//! scenario is what exercises the geographic/zone protocols (Fig. 6) and the
//! RSU deployments of the infrastructure experiments (Fig. 5).

use crate::distributions::{Sampler, TruncatedNormal};
use crate::geometry::{Heading, Position, Vec2};
use crate::model::{MobilityModel, RegionBounds};
use crate::road::RoadNetwork;
use crate::vehicle::{VehicleKind, VehicleState};
use serde::{Deserialize, Serialize};
use vanet_sim::{NodeId, SimDuration, SimRng};

/// Configuration and builder for an [`UrbanGridModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UrbanGridBuilder {
    blocks_x: usize,
    blocks_y: usize,
    block_m: f64,
    vehicles: usize,
    buses: usize,
    speed_limit_mps: f64,
    speed_mean_mps: f64,
    speed_std_mps: f64,
    turn_probability: f64,
    first_node_id: u32,
}

impl Default for UrbanGridBuilder {
    fn default() -> Self {
        UrbanGridBuilder {
            blocks_x: 5,
            blocks_y: 5,
            block_m: 300.0,
            vehicles: 60,
            buses: 0,
            speed_limit_mps: 14.0, // ~50 km/h
            speed_mean_mps: 11.0,
            speed_std_mps: 2.0,
            turn_probability: 0.4,
            first_node_id: 0,
        }
    }
}

impl UrbanGridBuilder {
    /// Creates a builder with defaults (5×5 blocks of 300 m, 60 vehicles).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of blocks in each direction.
    #[must_use]
    pub fn blocks(mut self, x: usize, y: usize) -> Self {
        self.blocks_x = x.max(1);
        self.blocks_y = y.max(1);
        self
    }

    /// Sets the block edge length in metres.
    #[must_use]
    pub fn block_m(mut self, m: f64) -> Self {
        self.block_m = m;
        self
    }

    /// Sets the number of vehicles.
    #[must_use]
    pub fn vehicles(mut self, count: usize) -> Self {
        self.vehicles = count;
        self
    }

    /// Sets how many of the vehicles are buses.
    #[must_use]
    pub fn buses(mut self, count: usize) -> Self {
        self.buses = count;
        self
    }

    /// Sets the urban speed limit in m/s.
    #[must_use]
    pub fn speed_limit_mps(mut self, v: f64) -> Self {
        self.speed_limit_mps = v;
        self
    }

    /// Sets the mean desired speed in m/s.
    #[must_use]
    pub fn speed_mean_mps(mut self, v: f64) -> Self {
        self.speed_mean_mps = v;
        self
    }

    /// Sets the probability of turning (rather than continuing straight) at an
    /// intersection.
    #[must_use]
    pub fn turn_probability(mut self, p: f64) -> Self {
        self.turn_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the node id assigned to the first vehicle.
    #[must_use]
    pub fn first_node_id(mut self, id: u32) -> Self {
        self.first_node_id = id;
        self
    }

    /// Side length of the simulated area along x, metres.
    #[must_use]
    pub fn width_m(&self) -> f64 {
        self.blocks_x as f64 * self.block_m
    }

    /// Side length of the simulated area along y, metres.
    #[must_use]
    pub fn height_m(&self) -> f64 {
        self.blocks_y as f64 * self.block_m
    }

    /// The road network corresponding to this grid (for map-aware protocols).
    #[must_use]
    pub fn road_network(&self) -> RoadNetwork {
        RoadNetwork::manhattan_grid(
            self.blocks_x + 1,
            self.blocks_y + 1,
            self.block_m,
            1,
            3.5,
            self.speed_limit_mps,
        )
    }

    /// Builds the urban model, placing vehicles at random street positions.
    #[must_use]
    pub fn build(self, rng: &mut SimRng) -> UrbanGridModel {
        let speed_dist = TruncatedNormal::new(
            self.speed_mean_mps,
            self.speed_std_mps,
            2.0,
            self.speed_limit_mps,
        );
        let mut vehicles = Vec::with_capacity(self.vehicles);
        for i in 0..self.vehicles {
            let kind = if i < self.buses {
                VehicleKind::Bus
            } else {
                VehicleKind::Car
            };
            // Choose a random street (horizontal or vertical) and a position on it.
            let heading = match rng.uniform_usize(4) {
                0 => Heading::EAST,
                1 => Heading::WEST,
                2 => Heading::NORTH,
                _ => Heading::SOUTH,
            };
            let horizontal = matches!(heading, Heading { .. })
                && (heading == Heading::EAST || heading == Heading::WEST);
            let position = if horizontal {
                let street = rng.uniform_usize(self.blocks_y + 1) as f64 * self.block_m;
                Vec2::new(rng.uniform_range(0.0, self.width_m()), street)
            } else {
                let street = rng.uniform_usize(self.blocks_x + 1) as f64 * self.block_m;
                Vec2::new(street, rng.uniform_range(0.0, self.height_m()))
            };
            let desired = match kind {
                VehicleKind::Bus => self.speed_mean_mps * 0.8,
                _ => speed_dist.sample(rng),
            };
            vehicles.push(UrbanVehicle {
                id: NodeId(self.first_node_id + i as u32),
                kind,
                position,
                heading,
                speed: desired,
                desired_speed: desired,
            });
        }
        let mut model = UrbanGridModel {
            config: self,
            vehicles,
            states: Vec::new(),
        };
        model.refresh_states();
        model
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct UrbanVehicle {
    id: NodeId,
    kind: VehicleKind,
    position: Position,
    heading: Heading,
    speed: f64,
    desired_speed: f64,
}

/// Vehicles moving on a Manhattan street grid with random turns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UrbanGridModel {
    config: UrbanGridBuilder,
    vehicles: Vec<UrbanVehicle>,
    states: Vec<VehicleState>,
}

impl UrbanGridModel {
    /// The builder/configuration this model was constructed from.
    #[must_use]
    pub fn config(&self) -> &UrbanGridBuilder {
        &self.config
    }

    fn wrap(&self, mut p: Position) -> Position {
        let w = self.config.width_m();
        let h = self.config.height_m();
        while p.x < 0.0 {
            p.x += w;
        }
        while p.x > w {
            p.x -= w;
        }
        while p.y < 0.0 {
            p.y += h;
        }
        while p.y > h {
            p.y -= h;
        }
        p
    }

    /// Distance to the next intersection along the current heading.
    fn distance_to_next_intersection(&self, v: &UrbanVehicle) -> f64 {
        let block = self.config.block_m;
        let unit = v.heading.unit();
        if unit.x > 0.5 {
            let next = ((v.position.x / block).floor() + 1.0) * block;
            next - v.position.x
        } else if unit.x < -0.5 {
            let prev = (v.position.x / block).ceil() - 1.0;
            v.position.x - prev * block
        } else if unit.y > 0.5 {
            let next = ((v.position.y / block).floor() + 1.0) * block;
            next - v.position.y
        } else {
            let prev = (v.position.y / block).ceil() - 1.0;
            v.position.y - prev * block
        }
    }

    fn turn(&self, heading: Heading, rng: &mut SimRng) -> Heading {
        if !rng.chance(self.config.turn_probability) {
            return heading;
        }
        // Turn left or right with equal probability.
        let unit = heading.unit();
        let left = Heading::from_vec(unit.perpendicular());
        let right = Heading::from_vec(-unit.perpendicular());
        if rng.chance(0.5) {
            left
        } else {
            right
        }
    }

    fn refresh_states(&mut self) {
        self.states = self
            .vehicles
            .iter()
            .map(|v| VehicleState {
                id: v.id,
                kind: v.kind,
                position: v.position,
                velocity: v.heading.unit() * v.speed,
                acceleration: 0.0,
                heading: v.heading,
                lane: 0,
                desired_speed: v.desired_speed,
            })
            .collect();
    }

    /// The road network underlying this scenario.
    #[must_use]
    pub fn road_network(&self) -> RoadNetwork {
        self.config.road_network()
    }
}

impl MobilityModel for UrbanGridModel {
    fn step(&mut self, dt: SimDuration, rng: &mut SimRng) {
        let dt = dt.as_secs();
        if dt <= 0.0 {
            return;
        }
        let block = self.config.block_m;
        let width = self.config.width_m();
        let height = self.config.height_m();
        for idx in 0..self.vehicles.len() {
            let mut remaining = self.vehicles[idx].speed * dt;
            // A vehicle may cross at most a couple of intersections per step.
            for _ in 0..8 {
                let v = &self.vehicles[idx];
                let to_next = self.distance_to_next_intersection(v);
                if remaining < to_next || to_next <= 0.0 {
                    let unit = v.heading.unit();
                    let new_pos = v.position + unit * remaining;
                    self.vehicles[idx].position =
                        Position::new(new_pos.x.clamp(0.0, width), new_pos.y.clamp(0.0, height));
                    break;
                }
                // Advance to the intersection, then possibly turn.
                let unit = v.heading.unit();
                let at_intersection = v.position + unit * to_next;
                remaining -= to_next;
                let snapped = Position::new(
                    (at_intersection.x / block).round() * block,
                    (at_intersection.y / block).round() * block,
                );
                let new_heading = {
                    let candidate = self.turn(self.vehicles[idx].heading, rng);
                    // Do not head straight off the grid: reverse instead.
                    let probe = snapped + candidate.unit() * (block * 0.5);
                    if probe.x < -1.0
                        || probe.x > width + 1.0
                        || probe.y < -1.0
                        || probe.y > height + 1.0
                    {
                        candidate.reversed()
                    } else {
                        candidate
                    }
                };
                let v = &mut self.vehicles[idx];
                v.position = snapped;
                v.heading = new_heading;
            }
            let wrapped = self.wrap(self.vehicles[idx].position);
            self.vehicles[idx].position = wrapped;
        }
        self.refresh_states();
    }

    fn states(&self) -> &[VehicleState] {
        &self.states
    }

    fn state(&self, id: NodeId) -> Option<&VehicleState> {
        self.states.iter().find(|s| s.id == id)
    }

    fn bounds(&self) -> RegionBounds {
        RegionBounds::new(
            Position::new(0.0, 0.0),
            Position::new(self.config.width_m(), self.config.height_m()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(vehicles: usize, seed: u64) -> UrbanGridModel {
        let mut rng = SimRng::new(seed);
        UrbanGridBuilder::new()
            .blocks(4, 4)
            .block_m(250.0)
            .vehicles(vehicles)
            .build(&mut rng)
    }

    #[test]
    fn builder_places_vehicles_on_streets() {
        let m = build(50, 1);
        assert_eq!(m.states().len(), 50);
        for s in m.states() {
            let on_horizontal = (s.position.y / 250.0).fract().abs() < 1e-9
                || ((s.position.y / 250.0).fract() - 1.0).abs() < 1e-9;
            let on_vertical = (s.position.x / 250.0).fract().abs() < 1e-9
                || ((s.position.x / 250.0).fract() - 1.0).abs() < 1e-9;
            assert!(
                on_horizontal || on_vertical,
                "vehicle not on a street: {}",
                s.position
            );
        }
    }

    #[test]
    fn vehicles_stay_in_bounds() {
        let mut m = build(40, 2);
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            m.step(SimDuration::from_secs(1.0), &mut rng);
        }
        let b = m.bounds();
        for s in m.states() {
            assert!(
                b.contains(s.position),
                "vehicle left the grid: {}",
                s.position
            );
        }
    }

    #[test]
    fn vehicles_move() {
        let mut m = build(20, 4);
        let before: Vec<Position> = m.states().iter().map(|s| s.position).collect();
        let mut rng = SimRng::new(5);
        for _ in 0..10 {
            m.step(SimDuration::from_secs(1.0), &mut rng);
        }
        let moved = m
            .states()
            .iter()
            .zip(&before)
            .filter(|(s, b)| (s.position - **b).norm() > 1.0)
            .count();
        assert!(moved > 15, "most vehicles should have moved, got {moved}");
    }

    #[test]
    fn headings_change_over_time() {
        let mut m = build(30, 6);
        let before: Vec<Heading> = m.states().iter().map(|s| s.heading).collect();
        let mut rng = SimRng::new(7);
        for _ in 0..120 {
            m.step(SimDuration::from_secs(1.0), &mut rng);
        }
        let changed = m
            .states()
            .iter()
            .zip(&before)
            .filter(|(s, b)| s.heading != **b)
            .count();
        assert!(
            changed > 5,
            "some vehicles should have turned, got {changed}"
        );
    }

    #[test]
    fn deterministic_given_same_seed() {
        let mut a = build(25, 8);
        let mut b = build(25, 8);
        let mut ra = SimRng::new(9);
        let mut rb = SimRng::new(9);
        for _ in 0..50 {
            a.step(SimDuration::from_secs(0.5), &mut ra);
            b.step(SimDuration::from_secs(0.5), &mut rb);
        }
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn road_network_matches_grid() {
        let b = UrbanGridBuilder::new().blocks(4, 4).block_m(250.0);
        let net = b.road_network();
        assert!(!net.is_empty());
        assert_eq!(b.width_m(), 1000.0);
        assert_eq!(b.height_m(), 1000.0);
    }

    #[test]
    fn buses_created_and_ids_offset() {
        let mut rng = SimRng::new(10);
        let m = UrbanGridBuilder::new()
            .vehicles(10)
            .buses(2)
            .first_node_id(50)
            .build(&mut rng);
        assert_eq!(
            m.states()
                .iter()
                .filter(|s| s.kind == VehicleKind::Bus)
                .count(),
            2
        );
        assert_eq!(m.states()[0].id, NodeId(50));
    }
}
