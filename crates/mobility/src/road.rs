//! Road topology: segments, lanes and the road network graph.
//!
//! The road model is deliberately lightweight: mobility-based and
//! geographic-location-based routing only need to know where roads are, which
//! direction traffic flows on them and how they connect at intersections.

use crate::geometry::{Heading, Position, Vec2};
use serde::{Deserialize, Serialize};

/// Direction of traffic flow on a directed road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadDirection {
    /// Traffic travels from the segment start towards its end.
    Forward,
    /// Traffic travels from the segment end towards its start.
    Backward,
}

impl RoadDirection {
    /// The opposite flow direction.
    #[must_use]
    pub fn reversed(self) -> Self {
        match self {
            RoadDirection::Forward => RoadDirection::Backward,
            RoadDirection::Backward => RoadDirection::Forward,
        }
    }
}

/// One lane of a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lane {
    /// Index of the lane within its segment (0 = rightmost).
    pub index: usize,
    /// Flow direction relative to the segment axis.
    pub direction: RoadDirection,
    /// Lateral offset from the segment centreline, in metres.
    pub lateral_offset: f64,
    /// Speed limit on this lane, in m/s.
    pub speed_limit: f64,
}

/// A straight road segment between two endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadSegment {
    /// Identifier of the segment within its network.
    pub id: usize,
    /// Start point.
    pub start: Position,
    /// End point.
    pub end: Position,
    /// The lanes carried by this segment.
    pub lanes: Vec<Lane>,
}

impl RoadSegment {
    /// Creates a segment with `lanes_per_direction` lanes each way and a
    /// uniform speed limit.
    #[must_use]
    pub fn new(
        id: usize,
        start: Position,
        end: Position,
        lanes_per_direction: usize,
        lane_width: f64,
        speed_limit: f64,
    ) -> Self {
        let mut lanes = Vec::new();
        for i in 0..lanes_per_direction {
            lanes.push(Lane {
                index: i,
                direction: RoadDirection::Forward,
                lateral_offset: -(i as f64 + 0.5) * lane_width,
                speed_limit,
            });
        }
        for i in 0..lanes_per_direction {
            lanes.push(Lane {
                index: lanes_per_direction + i,
                direction: RoadDirection::Backward,
                lateral_offset: (i as f64 + 0.5) * lane_width,
                speed_limit,
            });
        }
        RoadSegment {
            id,
            start,
            end,
            lanes,
        }
    }

    /// Length of the segment in metres.
    #[must_use]
    pub fn length(&self) -> f64 {
        (self.end - self.start).norm()
    }

    /// Unit vector along the segment axis (start → end).
    #[must_use]
    pub fn axis(&self) -> Vec2 {
        (self.end - self.start).normalized()
    }

    /// Heading of traffic flowing in `direction` on this segment.
    #[must_use]
    pub fn heading(&self, direction: RoadDirection) -> Heading {
        match direction {
            RoadDirection::Forward => Heading::from_vec(self.axis()),
            RoadDirection::Backward => Heading::from_vec(-self.axis()),
        }
    }

    /// Converts a longitudinal offset (metres from start) and a lane into a
    /// world-space position.
    #[must_use]
    pub fn position_at(&self, longitudinal: f64, lane: &Lane) -> Position {
        let axis = self.axis();
        let lateral = axis.perpendicular() * lane.lateral_offset;
        self.start + axis * longitudinal + lateral
    }

    /// Projects a world-space position onto the segment axis, returning the
    /// longitudinal offset clamped to `[0, length]`.
    #[must_use]
    pub fn project(&self, position: Position) -> f64 {
        let rel = position - self.start;
        rel.scalar_projection_onto(self.end - self.start)
            .clamp(0.0, self.length())
    }

    /// Number of lanes in each direction (assumes the symmetric constructor).
    #[must_use]
    pub fn lanes_per_direction(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.direction == RoadDirection::Forward)
            .count()
    }
}

/// A graph of road segments joined at shared endpoints.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoadNetwork {
    segments: Vec<RoadSegment>,
}

impl RoadNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment and returns its id.
    pub fn add_segment(&mut self, mut segment: RoadSegment) -> usize {
        let id = self.segments.len();
        segment.id = id;
        self.segments.push(segment);
        id
    }

    /// All segments.
    #[must_use]
    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    /// Looks up a segment by id.
    #[must_use]
    pub fn segment(&self, id: usize) -> Option<&RoadSegment> {
        self.segments.get(id)
    }

    /// Number of segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the network has no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total road length in metres.
    #[must_use]
    pub fn total_length(&self) -> f64 {
        self.segments.iter().map(RoadSegment::length).sum()
    }

    /// Segments whose start or end coincides (within `tol` metres) with `point`.
    #[must_use]
    pub fn segments_at(&self, point: Position, tol: f64) -> Vec<usize> {
        self.segments
            .iter()
            .filter(|s| (s.start - point).norm() <= tol || (s.end - point).norm() <= tol)
            .map(|s| s.id)
            .collect()
    }

    /// The segment closest to `position` (by projection distance), if any.
    #[must_use]
    pub fn nearest_segment(&self, position: Position) -> Option<usize> {
        self.segments
            .iter()
            .map(|s| {
                let along = s.project(position);
                let point = s.start + s.axis() * along;
                (s.id, (point - position).norm())
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
    }

    /// Builds a Manhattan grid of `nx × ny` intersections spaced `block` metres
    /// apart, with `lanes_per_direction` lanes and a uniform speed limit.
    #[must_use]
    pub fn manhattan_grid(
        nx: usize,
        ny: usize,
        block: f64,
        lanes_per_direction: usize,
        lane_width: f64,
        speed_limit: f64,
    ) -> Self {
        let mut net = RoadNetwork::new();
        // Horizontal streets.
        for j in 0..ny {
            for i in 0..nx.saturating_sub(1) {
                let start = Vec2::new(i as f64 * block, j as f64 * block);
                let end = Vec2::new((i + 1) as f64 * block, j as f64 * block);
                net.add_segment(RoadSegment::new(
                    0,
                    start,
                    end,
                    lanes_per_direction,
                    lane_width,
                    speed_limit,
                ));
            }
        }
        // Vertical streets.
        for i in 0..nx {
            for j in 0..ny.saturating_sub(1) {
                let start = Vec2::new(i as f64 * block, j as f64 * block);
                let end = Vec2::new(i as f64 * block, (j + 1) as f64 * block);
                net.add_segment(RoadSegment::new(
                    0,
                    start,
                    end,
                    lanes_per_direction,
                    lane_width,
                    speed_limit,
                ));
            }
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> RoadSegment {
        RoadSegment::new(0, Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), 2, 4.0, 30.0)
    }

    #[test]
    fn segment_geometry() {
        let s = seg();
        assert_eq!(s.length(), 100.0);
        assert_eq!(s.axis(), Vec2::new(1.0, 0.0));
        assert_eq!(s.lanes.len(), 4);
        assert_eq!(s.lanes_per_direction(), 2);
        assert_eq!(s.heading(RoadDirection::Forward), Heading::EAST);
        assert_eq!(s.heading(RoadDirection::Backward), Heading::WEST);
    }

    #[test]
    fn lane_positions_are_offset() {
        let s = seg();
        let fwd_lane = s.lanes[0];
        let bwd_lane = s.lanes[2];
        let p_fwd = s.position_at(50.0, &fwd_lane);
        let p_bwd = s.position_at(50.0, &bwd_lane);
        assert_eq!(p_fwd.x, 50.0);
        assert_eq!(p_bwd.x, 50.0);
        assert!(p_fwd.y < 0.0, "forward lanes on the right of the axis");
        assert!(p_bwd.y > 0.0, "backward lanes on the left of the axis");
    }

    #[test]
    fn projection_clamps() {
        let s = seg();
        assert_eq!(s.project(Vec2::new(-10.0, 3.0)), 0.0);
        assert_eq!(s.project(Vec2::new(40.0, 3.0)), 40.0);
        assert_eq!(s.project(Vec2::new(400.0, 3.0)), 100.0);
    }

    #[test]
    fn direction_reversal() {
        assert_eq!(RoadDirection::Forward.reversed(), RoadDirection::Backward);
        assert_eq!(RoadDirection::Backward.reversed(), RoadDirection::Forward);
    }

    #[test]
    fn network_queries() {
        let mut net = RoadNetwork::new();
        assert!(net.is_empty());
        let id = net.add_segment(seg());
        assert_eq!(net.len(), 1);
        assert_eq!(net.segment(id).unwrap().length(), 100.0);
        assert_eq!(net.total_length(), 100.0);
        assert_eq!(net.nearest_segment(Vec2::new(50.0, 10.0)), Some(id));
        assert_eq!(net.segments_at(Vec2::new(0.0, 0.0), 1.0), vec![id]);
        assert!(net.segments_at(Vec2::new(50.0, 50.0), 1.0).is_empty());
    }

    #[test]
    fn manhattan_grid_counts() {
        let net = RoadNetwork::manhattan_grid(3, 3, 200.0, 1, 3.5, 14.0);
        // Horizontal: 3 rows × 2 segments; vertical: 3 columns × 2 segments.
        assert_eq!(net.len(), 12);
        assert_eq!(net.total_length(), 12.0 * 200.0);
        // Every segment id matches its index.
        for (i, s) in net.segments().iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }
}
