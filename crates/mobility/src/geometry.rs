//! 2-D geometry primitives: vectors, positions, velocities and headings.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector in metres (or metres/second when used as a velocity).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a unit vector pointing at `angle` radians from the +x axis.
    #[must_use]
    pub fn from_angle(angle: f64) -> Self {
        Vec2 {
            x: angle.cos(),
            y: angle.sin(),
        }
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the cross product (signed area).
    #[must_use]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or zero if this is the zero vector.
    #[must_use]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// The vector rotated by 90° counter-clockwise.
    #[must_use]
    pub fn perpendicular(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Angle from the +x axis in radians, in `(-π, π]`.
    #[must_use]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Projects `self` onto the direction of `onto` (scalar projection).
    ///
    /// Returns 0 if `onto` is the zero vector.
    #[must_use]
    pub fn scalar_projection_onto(self, onto: Vec2) -> f64 {
        let n = onto.norm();
        if n == 0.0 {
            0.0
        } else {
            self.dot(onto) / n
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A position on the plane, in metres.
pub type Position = Vec2;

/// A velocity vector, in metres per second.
pub type Velocity = Vec2;

/// Euclidean distance between two positions, in metres.
#[must_use]
pub fn distance(a: Position, b: Position) -> f64 {
    (a - b).norm()
}

/// Whether `a` and `b` are within `threshold` metres of each other —
/// decides exactly like `distance(a, b) <= threshold`, but without the
/// `hypot` call for all but borderline inputs.
///
/// `hypot` (the carefully-scaled, sub-ulp-accurate libm routine behind
/// [`distance`]) dominates the fleet-scale transmit pipeline, yet almost
/// every call only feeds a range comparison. The squared comparison
/// `dx² + dy² ≤ threshold²` is a handful of cycles but not bit-equivalent,
/// so it is used as a *conservative band*: accept when the squared distance
/// is below `threshold²·(1 − 1e-9)`, reject above `threshold²·(1 + 1e-9)`,
/// and fall back to the exact `hypot` comparison inside the band. The band
/// is millions of ulps wide while the squared form's rounding error is a
/// few ulps, so the fast paths can never disagree with the exact
/// comparison — byte-identical simulation outcomes, pinned by the golden
/// tests.
#[must_use]
pub fn within(a: Position, b: Position, threshold: f64) -> bool {
    WithinFilter::new(threshold).check(a, b)
}

/// The reusable form of [`within`]: precomputes the banded squared bounds
/// once so a loop testing many positions against one threshold pays only a
/// subtraction, two multiplies and a compare per element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WithinFilter {
    threshold: f64,
    accept_below: f64,
    reject_above: f64,
}

impl WithinFilter {
    /// Relative half-width of the exact-comparison band: millions of ulps,
    /// dwarfing the few-ulp rounding of the squared distance, so the fast
    /// accept/reject paths can never contradict `distance(a, b) <= t`.
    const BAND: f64 = 1e-9;

    /// Builds a filter deciding `distance(a, b) <= threshold`.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        let t2 = threshold * threshold;
        WithinFilter {
            threshold,
            accept_below: t2 * (1.0 - Self::BAND),
            reject_above: t2 * (1.0 + Self::BAND),
        }
    }

    /// Whether `a` and `b` are within the threshold — decision-identical to
    /// `distance(a, b) <= threshold`.
    #[must_use]
    pub fn check(&self, a: Position, b: Position) -> bool {
        if self.threshold < 0.0 {
            return false;
        }
        let d2 = (a - b).norm_sq();
        if d2 <= self.accept_below {
            return true;
        }
        if d2 >= self.reject_above {
            return false;
        }
        distance(a, b) <= self.threshold
    }
}

/// A compass-free heading: the direction of travel as a unit vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heading(Vec2);

impl Heading {
    /// East (+x).
    pub const EAST: Heading = Heading(Vec2 { x: 1.0, y: 0.0 });
    /// West (−x).
    pub const WEST: Heading = Heading(Vec2 { x: -1.0, y: 0.0 });
    /// North (+y).
    pub const NORTH: Heading = Heading(Vec2 { x: 0.0, y: 1.0 });
    /// South (−y).
    pub const SOUTH: Heading = Heading(Vec2 { x: 0.0, y: -1.0 });

    /// Creates a heading from an arbitrary (non-zero) direction vector.
    ///
    /// Falls back to [`Heading::EAST`] for a zero vector.
    #[must_use]
    pub fn from_vec(v: Vec2) -> Self {
        let n = v.normalized();
        if n == Vec2::ZERO {
            Heading::EAST
        } else {
            Heading(n)
        }
    }

    /// The unit direction vector.
    #[must_use]
    pub fn unit(self) -> Vec2 {
        self.0
    }

    /// The opposite heading.
    #[must_use]
    pub fn reversed(self) -> Heading {
        Heading(-self.0)
    }

    /// Angle between two headings, in radians, in `[0, π]`.
    #[must_use]
    pub fn angle_to(self, other: Heading) -> f64 {
        self.0.dot(other.0).clamp(-1.0, 1.0).acos()
    }

    /// Whether two headings point in broadly the same direction (angle < 90°).
    #[must_use]
    pub fn same_direction(self, other: Heading) -> bool {
        self.0.dot(other.0) > 0.0
    }
}

impl Default for Heading {
    fn default() -> Self {
        Heading::EAST
    }
}

impl fmt::Display for Heading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}°", self.0.angle().to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn norm_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(distance(Vec2::ZERO, a), 5.0);
        assert_eq!(a.normalized().norm(), 1.0);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn dot_cross_projection() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 2.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 2.0);
        assert_eq!(a.perpendicular(), Vec2::new(0.0, 1.0));
        let v = Vec2::new(3.0, 4.0);
        assert!((v.scalar_projection_onto(Vec2::new(1.0, 0.0)) - 3.0).abs() < 1e-12);
        assert_eq!(v.scalar_projection_onto(Vec2::ZERO), 0.0);
    }

    #[test]
    fn angles() {
        let e = Vec2::from_angle(0.0);
        assert!((e.x - 1.0).abs() < 1e-12);
        let n = Vec2::from_angle(std::f64::consts::FRAC_PI_2);
        assert!((n.y - 1.0).abs() < 1e-12);
        assert!((n.angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn headings() {
        assert!(Heading::EAST.same_direction(Heading::from_vec(Vec2::new(5.0, 1.0))));
        assert!(!Heading::EAST.same_direction(Heading::WEST));
        assert_eq!(Heading::EAST.reversed().unit(), Vec2::new(-1.0, 0.0));
        let angle = Heading::EAST.angle_to(Heading::NORTH);
        assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Heading::from_vec(Vec2::ZERO), Heading::EAST);
        assert_eq!(Heading::default(), Heading::EAST);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Vec2::new(1.0, 2.0).to_string(), "(1.00, 2.00)");
        assert_eq!(Heading::NORTH.to_string(), "90°");
    }

    #[test]
    fn within_agrees_with_the_exact_distance_comparison() {
        // Deterministic pseudo-random sweep without pulling in SimRng (this
        // crate sits below vanet-sim): a Weyl sequence over positions and
        // thresholds, plus adversarial exactly-on-the-boundary cases.
        let mut x = 0.5_f64;
        let mut next = move || {
            x = (x + std::f64::consts::FRAC_1_SQRT_2) % 1.0;
            x
        };
        for _ in 0..20_000 {
            let a = Vec2::new(next() * 4_000.0 - 2_000.0, next() * 4_000.0 - 2_000.0);
            let b = Vec2::new(next() * 4_000.0 - 2_000.0, next() * 4_000.0 - 2_000.0);
            let threshold = next() * 600.0;
            assert_eq!(
                within(a, b, threshold),
                distance(a, b) <= threshold,
                "within() diverged at {a:?} {b:?} threshold {threshold}"
            );
        }
        // Boundary: distance exactly equal to the threshold must accept.
        let a = Vec2::ZERO;
        let b = Vec2::new(250.0, 0.0);
        assert!(within(a, b, 250.0));
        assert!(!within(a, b, 249.999_999_999));
        // The band fallback: thresholds a hair around an exact diagonal.
        let c = Vec2::new(3.0, 4.0);
        assert!(within(Vec2::ZERO, c, 5.0));
        assert!(!within(Vec2::ZERO, c, 5.0 - 1e-12));
        // Degenerate thresholds.
        assert!(within(a, a, 0.0));
        assert!(!within(a, b, 0.0));
        assert!(!within(a, b, -1.0));
    }
}
