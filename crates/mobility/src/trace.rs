//! Mobility traces: recording and replaying vehicle trajectories.
//!
//! Traces serve two purposes: they let experiments re-run different routing
//! protocols over the *identical* vehicle movement (isolating protocol effects
//! from mobility randomness), and they let the link-lifetime model (Fig. 3) be
//! validated against observed link break times.

use crate::geometry::{Position, Velocity};
use crate::model::MobilityModel;
use serde::{Deserialize, Serialize};
use vanet_sim::{NodeId, SimTime};

/// One recorded sample: where a vehicle was at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Sample timestamp.
    pub time: SimTime,
    /// The vehicle.
    pub id: NodeId,
    /// Its position.
    pub position: Position,
    /// Its velocity.
    pub velocity: Velocity,
}

/// A time-ordered collection of [`TraceSample`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MobilityTrace {
    samples: Vec<TraceSample>,
}

impl MobilityTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current state of every vehicle in `model` at time `now`.
    pub fn record<M: MobilityModel + ?Sized>(&mut self, now: SimTime, model: &M) {
        for s in model.states() {
            self.samples.push(TraceSample {
                time: now,
                id: s.id,
                position: s.position,
                velocity: s.velocity,
            });
        }
    }

    /// Adds a single sample.
    pub fn push(&mut self, sample: TraceSample) {
        self.samples.push(sample);
    }

    /// All samples in recording order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples belonging to one vehicle, in time order.
    #[must_use]
    pub fn trajectory(&self, id: NodeId) -> Vec<&TraceSample> {
        self.samples.iter().filter(|s| s.id == id).collect()
    }

    /// Position of a vehicle at `time`, linearly interpolated between the two
    /// nearest samples. Returns `None` if the vehicle has no samples.
    #[must_use]
    pub fn position_at(&self, id: NodeId, time: SimTime) -> Option<Position> {
        let traj = self.trajectory(id);
        if traj.is_empty() {
            return None;
        }
        if time <= traj[0].time {
            return Some(traj[0].position);
        }
        if time >= traj[traj.len() - 1].time {
            return Some(traj[traj.len() - 1].position);
        }
        for pair in traj.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if time >= a.time && time <= b.time {
                let span = (b.time - a.time).as_secs();
                if span == 0.0 {
                    return Some(a.position);
                }
                let frac = (time - a.time).as_secs() / span;
                return Some(a.position + (b.position - a.position) * frac);
            }
        }
        Some(traj[traj.len() - 1].position)
    }

    /// The set of distinct vehicle ids appearing in the trace.
    #[must_use]
    pub fn vehicle_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.samples.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The first and last sample times, if the trace is non-empty.
    #[must_use]
    pub fn time_span(&self) -> Option<(SimTime, SimTime)> {
        let first = self.samples.first()?.time;
        let last = self
            .samples
            .iter()
            .map(|s| s.time)
            .fold(first, SimTime::max);
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;
    use crate::highway::HighwayBuilder;
    use vanet_sim::{SimDuration, SimRng};

    #[test]
    fn record_and_query() {
        let mut rng = SimRng::new(1);
        let mut hw = HighwayBuilder::new().vehicles(5).build(&mut rng);
        let mut trace = MobilityTrace::new();
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            trace.record(t, &hw);
            hw.step(SimDuration::from_secs(1.0), &mut rng);
            t += SimDuration::from_secs(1.0);
        }
        assert_eq!(trace.len(), 50);
        assert_eq!(trace.vehicle_ids().len(), 5);
        assert_eq!(trace.trajectory(NodeId(0)).len(), 10);
        let (start, end) = trace.time_span().unwrap();
        assert_eq!(start, SimTime::ZERO);
        assert_eq!(end, SimTime::from_secs(9.0));
    }

    #[test]
    fn interpolation_between_samples() {
        let mut trace = MobilityTrace::new();
        trace.push(TraceSample {
            time: SimTime::from_secs(0.0),
            id: NodeId(1),
            position: Vec2::new(0.0, 0.0),
            velocity: Vec2::new(10.0, 0.0),
        });
        trace.push(TraceSample {
            time: SimTime::from_secs(10.0),
            id: NodeId(1),
            position: Vec2::new(100.0, 0.0),
            velocity: Vec2::new(10.0, 0.0),
        });
        let mid = trace
            .position_at(NodeId(1), SimTime::from_secs(5.0))
            .unwrap();
        assert!((mid.x - 50.0).abs() < 1e-9);
        // Clamping outside the recorded span.
        assert_eq!(
            trace
                .position_at(NodeId(1), SimTime::from_secs(-5.0))
                .unwrap(),
            Vec2::new(0.0, 0.0)
        );
        assert_eq!(
            trace
                .position_at(NodeId(1), SimTime::from_secs(50.0))
                .unwrap(),
            Vec2::new(100.0, 0.0)
        );
        assert!(trace.position_at(NodeId(2), SimTime::ZERO).is_none());
    }

    #[test]
    fn empty_trace_behaviour() {
        let trace = MobilityTrace::new();
        assert!(trace.is_empty());
        assert!(trace.time_span().is_none());
        assert!(trace.vehicle_ids().is_empty());
    }
}
