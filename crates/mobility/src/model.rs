//! The mobility model abstraction consumed by the network layer.

use crate::geometry::Position;
use crate::vehicle::VehicleState;
use serde::{Deserialize, Serialize};
use vanet_sim::{NodeId, SimDuration, SimRng};

/// Axis-aligned bounding box of the simulated region, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RegionBounds {
    /// Minimum corner.
    pub min: Position,
    /// Maximum corner.
    pub max: Position,
}

impl RegionBounds {
    /// Creates bounds from two corners.
    #[must_use]
    pub fn new(min: Position, max: Position) -> Self {
        RegionBounds { min, max }
    }

    /// Width of the region (x extent).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the region (y extent).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether a position lies inside the bounds (inclusive).
    #[must_use]
    pub fn contains(&self, p: Position) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The geometric centre of the region.
    #[must_use]
    pub fn center(&self) -> Position {
        Position::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

/// A mobility model: owns vehicle kinematics and advances them in time.
///
/// Implementations must be deterministic given the same RNG stream so that
/// simulation runs are reproducible.
pub trait MobilityModel {
    /// Advances all vehicles by `dt`.
    fn step(&mut self, dt: SimDuration, rng: &mut SimRng);

    /// Snapshot of every vehicle's current state.
    fn states(&self) -> &[VehicleState];

    /// State of one vehicle, if it exists in this model.
    fn state(&self, id: NodeId) -> Option<&VehicleState>;

    /// Bounding box of the simulated region.
    fn bounds(&self) -> RegionBounds;

    /// Number of vehicles managed by the model.
    fn len(&self) -> usize {
        self.states().len()
    }

    /// Whether the model manages no vehicles.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of one vehicle, if known.
    fn position(&self, id: NodeId) -> Option<Position> {
        self.state(id).map(|s| s.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;

    #[test]
    fn bounds_geometry() {
        let b = RegionBounds::new(Vec2::new(0.0, -10.0), Vec2::new(100.0, 10.0));
        assert_eq!(b.width(), 100.0);
        assert_eq!(b.height(), 20.0);
        assert!(b.contains(Vec2::new(50.0, 0.0)));
        assert!(!b.contains(Vec2::new(150.0, 0.0)));
        assert_eq!(b.center(), Vec2::new(50.0, 0.0));
    }
}
