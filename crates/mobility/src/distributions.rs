//! In-house probability distributions.
//!
//! The survey's probability-model-based protocols assume speed and
//! acceleration are normally distributed and inter-vehicle spacing is
//! exponentially / gamma / log-normally distributed (Sec. VII-A). Rather than
//! pulling in an extra dependency we implement the handful of samplers and
//! density functions needed, and test them against their analytic moments.

use vanet_sim::SimRng;

/// A sampler that draws `f64` values from a distribution.
pub trait Sampler {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;
}

/// Normal (Gaussian) distribution, sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        Normal { mu, sigma }
    }

    /// The mean parameter.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The standard-deviation parameter.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Probability density function at `x`.
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        if self.sigma == 0.0 {
            return if x == self.mu { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sigma == 0.0 {
            return if x >= self.mu { 1.0 } else { 0.0 };
        }
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

impl Sampler for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.sigma == 0.0 {
            return self.mu;
        }
        // Box–Muller transform.
        let u1 = rng.uniform().max(f64::MIN_POSITIVE);
        let u2 = rng.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mu + self.sigma * r * theta.cos()
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Normal distribution truncated to `[low, high]`, sampled by rejection.
///
/// Used for vehicle speeds: a speed is normally distributed around the lane's
/// cruise speed but physically bounded by 0 and the speed limit `v_m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    low: f64,
    high: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal on `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `sigma < 0`.
    #[must_use]
    pub fn new(mu: f64, sigma: f64, low: f64, high: f64) -> Self {
        assert!(low < high, "truncation range must be non-empty");
        TruncatedNormal {
            inner: Normal::new(mu, sigma),
            low,
            high,
        }
    }

    /// Lower truncation bound.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper truncation bound.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl Sampler for TruncatedNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Rejection sampling with a clamped fallback: for the parameters used
        // in the scenarios (mu well inside the range) rejection terminates in
        // a couple of iterations; the fallback guarantees termination.
        for _ in 0..64 {
            let x = self.inner.sample(rng);
            if x >= self.low && x <= self.high {
                return x;
            }
        }
        self.inner.sample(rng).clamp(self.low, self.high)
    }

    fn mean(&self) -> f64 {
        // Approximation: for the truncation ranges used in scenarios the mean
        // is close to the untruncated mean clamped into the interval.
        self.inner.mean().clamp(self.low, self.high)
    }

    fn variance(&self) -> f64 {
        self.inner.variance()
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for shadow-fading of the received signal strength (REAR model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log_mu: f64,
    log_sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal whose *logarithm* has mean `log_mu` and standard
    /// deviation `log_sigma`.
    #[must_use]
    pub fn new(log_mu: f64, log_sigma: f64) -> Self {
        assert!(
            log_sigma.is_finite() && log_sigma >= 0.0,
            "sigma must be >= 0"
        );
        LogNormal { log_mu, log_sigma }
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        Normal::new(self.log_mu, self.log_sigma).sample(rng).exp()
    }

    fn mean(&self) -> f64 {
        (self.log_mu + 0.5 * self.log_sigma * self.log_sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.log_sigma * self.log_sigma;
        (s2.exp() - 1.0) * (2.0 * self.log_mu + s2).exp()
    }
}

/// Exponential distribution with rate `lambda`.
///
/// Inter-vehicle headways in free-flowing traffic are commonly modelled as
/// exponential; this drives the CAR segment-connectivity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda` (events per unit).
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        Exponential { lambda }
    }

    /// The rate parameter.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Cumulative distribution function at `x`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }
}

/// Poisson distribution with mean `lambda`, sampled by inversion (small
/// lambda) or normal approximation (large lambda).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        Poisson { lambda }
    }

    /// Draws an integer sample.
    #[must_use]
    pub fn sample_count(&self, rng: &mut SimRng) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's inversion method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.uniform();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let n = Normal::new(self.lambda, self.lambda.sqrt());
            n.sample(rng).round().max(0.0) as u64
        }
    }
}

impl Sampler for Poisson {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_count(rng) as f64
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

/// Gamma distribution with shape `k` and scale `theta` (Marsaglia–Tsang).
///
/// One of the inter-vehicle spacing models mentioned in Sec. VII-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `k` and scale `theta`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    #[must_use]
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && scale > 0.0,
            "gamma parameters must be positive"
        );
        Gamma { shape, scale }
    }
}

impl Sampler for Gamma {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Marsaglia & Tsang (2000). For shape < 1 use the boost trick.
        if self.shape < 1.0 {
            let u = rng.uniform().max(f64::MIN_POSITIVE);
            let g = Gamma::new(self.shape + 1.0, self.scale);
            return g.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let std_normal = Normal::new(0.0, 1.0);
        loop {
            let x = std_normal.sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.uniform().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// The error function, via the Abramowitz–Stegun 7.1.26 rational approximation
/// (absolute error < 1.5e-7, ample for reception-probability curves).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254_829_592;
    let a2 = -0.284_496_736;
    let a3 = 1.421_413_741;
    let a4 = -1.453_152_027;
    let a5 = 1.061_405_429;
    let p = 0.327_591_1;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(s: &impl Sampler, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SimRng::new(seed);
        let mut stats = vanet_sim::RunningStats::new();
        for _ in 0..n {
            stats.record(s.sample(&mut rng));
        }
        (stats.mean(), stats.variance())
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(25.0, 4.0);
        let (m, v) = sample_stats(&d, 40_000, 1);
        assert!((m - 25.0).abs() < 0.1, "mean {m}");
        assert!((v - 16.0).abs() < 0.6, "variance {v}");
    }

    #[test]
    fn normal_pdf_cdf() {
        let d = Normal::new(0.0, 1.0);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((d.cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((d.pdf(0.0) - 0.398_942).abs() < 1e-5);
        assert!(d.cdf(5.0) > d.cdf(-5.0));
        let degenerate = Normal::new(2.0, 0.0);
        assert_eq!(degenerate.cdf(1.9), 0.0);
        assert_eq!(degenerate.cdf(2.1), 1.0);
        let mut rng = SimRng::new(2);
        assert_eq!(degenerate.sample(&mut rng), 2.0);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let d = TruncatedNormal::new(30.0, 10.0, 0.0, 36.0);
        let mut rng = SimRng::new(3);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=36.0).contains(&x), "sample {x} out of bounds");
        }
        assert_eq!(d.low(), 0.0);
        assert_eq!(d.high(), 36.0);
    }

    #[test]
    fn exponential_moments_and_cdf() {
        let d = Exponential::new(0.05);
        let (m, v) = sample_stats(&d, 40_000, 4);
        assert!((m - 20.0).abs() < 0.5, "mean {m}");
        assert!((v - 400.0).abs() < 30.0, "variance {v}");
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(20.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.lambda(), 0.05);
    }

    #[test]
    fn lognormal_moments() {
        let d = LogNormal::new(0.0, 0.5);
        let (m, _) = sample_stats(&d, 60_000, 5);
        assert!((m - d.mean()).abs() < 0.03, "mean {m} vs {}", d.mean());
        assert!(d.variance() > 0.0);
    }

    #[test]
    fn poisson_moments() {
        let d = Poisson::new(4.0);
        let (m, v) = sample_stats(&d, 30_000, 6);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert!((v - 4.0).abs() < 0.25, "variance {v}");
        let big = Poisson::new(200.0);
        let (m, _) = sample_stats(&big, 10_000, 7);
        assert!((m - 200.0).abs() < 1.5, "large-lambda mean {m}");
    }

    #[test]
    fn gamma_moments() {
        let d = Gamma::new(2.0, 10.0);
        let (m, v) = sample_stats(&d, 40_000, 8);
        assert!((m - 20.0).abs() < 0.5, "mean {m}");
        assert!((v - 200.0).abs() < 20.0, "variance {v}");
        let small_shape = Gamma::new(0.5, 1.0);
        let (m, _) = sample_stats(&small_shape, 40_000, 9);
        assert!((m - 0.5).abs() < 0.03, "mean {m}");
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((std_normal_cdf(1.644_85) - 0.95).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn truncated_normal_rejects_empty_range() {
        let _ = TruncatedNormal::new(0.0, 1.0, 5.0, 5.0);
    }
}
