//! # vanet-mobility — vehicle mobility substrate
//!
//! Vehicular ad hoc networks differ from other MANET instances chiefly in
//! their mobility: vehicles move fast, follow roads, obey speed limits and
//! interact with one another (car-following, lane changes). This crate
//! provides the mobility substrate the paper's routing analysis rests on:
//!
//! * 2-D geometry primitives ([`Position`], [`Velocity`], [`Vec2`]);
//! * in-house probability distributions (normal, truncated normal, log-normal,
//!   exponential, Poisson, gamma) used for speeds, headways and arrivals;
//! * a road model ([`RoadNetwork`], [`RoadSegment`], [`Lane`]);
//! * vehicle state and kinds ([`VehicleState`], [`VehicleKind`]);
//! * scenario generators: a multi-lane bidirectional [`highway`] and a
//!   Manhattan-grid [`urban`] network, with IDM-style car-following so that
//!   congestion emerges from density rather than being scripted;
//! * mobility traces for recording and replaying trajectories.
//!
//! # Example
//!
//! ```
//! use vanet_mobility::{HighwayBuilder, MobilityModel};
//! use vanet_sim::{SimDuration, SimRng};
//!
//! let mut rng = SimRng::new(1);
//! let mut highway = HighwayBuilder::new()
//!     .length_m(2_000.0)
//!     .lanes_per_direction(2)
//!     .vehicles(40)
//!     .build(&mut rng);
//! highway.step(SimDuration::from_secs(1.0), &mut rng);
//! assert_eq!(highway.states().len(), 40);
//! ```

#![warn(missing_docs)]

pub mod car_following;
pub mod distributions;
pub mod geometry;
pub mod highway;
pub mod model;
pub mod road;
pub mod trace;
pub mod urban;
pub mod vehicle;

pub use car_following::IdmParams;
pub use distributions::{Exponential, Gamma, LogNormal, Normal, Poisson, TruncatedNormal};
pub use geometry::{Heading, Position, Vec2, Velocity};
pub use highway::{HighwayBuilder, HighwayModel};
pub use model::{MobilityModel, RegionBounds};
pub use road::{Lane, RoadDirection, RoadNetwork, RoadSegment};
pub use trace::{MobilityTrace, TraceSample};
pub use urban::{UrbanGridBuilder, UrbanGridModel};
pub use vehicle::{VehicleKind, VehicleState};
