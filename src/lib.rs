//! # vanet — Reliable Routing in Vehicular Ad hoc Networks
//!
//! A Rust reproduction of *"Reliable Routing in Vehicular Ad hoc Networks"*
//! (Gongjun Yan, Nathalie Mitton, Xu Li; 2010): a VANET discrete-event
//! simulator, the paper's analytic link-lifetime and probability models, and
//! working implementations of representative routing protocols from all five
//! families of its taxonomy (connectivity-, mobility-, infrastructure-,
//! geographic-location- and probability-model-based).
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`sim`] — deterministic discrete-event kernel (time, events, RNG, stats);
//! * [`mobility`] — vehicles, roads, highway and urban scenario generators;
//! * [`net`] — packets, propagation models, MAC, medium, neighbour discovery;
//! * [`links`] — link lifetime (Eq. 1–4), direction decomposition and the
//!   probability models of Sec. VII;
//! * [`routing`] — the seventeen protocol implementations;
//! * [`core`] — scenarios, the simulation driver, metrics and experiments.
//!
//! # Quickstart
//!
//! ```
//! use vanet::core::{run_scenario, ProtocolKind, Scenario};
//! use vanet::sim::SimDuration;
//!
//! let scenario = Scenario::highway(30)
//!     .with_flows(2)
//!     .with_duration(SimDuration::from_secs(20.0));
//! let report = run_scenario(scenario, ProtocolKind::Pbr);
//! println!("PBR delivered {:.0}% of packets", report.delivery_ratio * 100.0);
//! ```

#![warn(missing_docs)]

pub use vanet_core as core;
pub use vanet_links as links;
pub use vanet_mobility as mobility;
pub use vanet_net as net;
pub use vanet_routing as routing;
pub use vanet_sim as sim;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use vanet_core::{
        run_averaged, run_scenario, CampaignPlan, ChannelModel, ProtocolKind, ReplicationPolicy,
        Report, Scenario, Simulation, TrafficRegime,
    };
    pub use vanet_links::{
        link_lifetime_constant_speed, link_lifetime_planar, path_lifetime, LinkLifetime,
    };
    pub use vanet_mobility::{HighwayBuilder, MobilityModel, UrbanGridBuilder};
    pub use vanet_routing::{Category, RoutingProtocol};
    pub use vanet_sim::{NodeId, SimDuration, SimRng, SimTime};
}
